//! [`FleetReport`] — canonical, byte-stable JSON over a fleet run.
//!
//! Same rendering discipline as `gcs_sched`'s `SchedReport`: stable
//! key order, one line per row, floats in Rust's shortest-round-trip
//! form with a guaranteed decimal point. Identical runs render
//! byte-identically (the thread-count determinism pin in
//! `tests/fleet.rs` compares these strings with `==`), and the CI
//! fleet smoke re-runs and byte-diffs the committed artifacts.

use gcs_core::Degradation;
use gcs_sched::{JobId, Rejection};
use gcs_workloads::Benchmark;

/// Per-device utilization row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetDevice {
    /// Device id from the [`FleetSpec`](crate::spec::FleetSpec).
    pub id: String,
    /// SM capacity.
    pub num_sms: u32,
    /// Groups this device ran.
    pub groups: u64,
    /// Cycles the device held a group (Σ group makespans).
    pub busy_cycles: u64,
}

/// One completed job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetJob {
    /// Trace-order id.
    pub id: JobId,
    /// Benchmark the job ran.
    pub bench: Benchmark,
    /// Device index the job ran on.
    pub device: usize,
    /// Arrival cycle.
    pub arrival: u64,
    /// Dispatch cycle.
    pub dispatch: u64,
    /// Completion cycle.
    pub completion: u64,
    /// SM budget the allocator granted.
    pub budget_sms: u32,
    /// Alone-run cycles on the job's device at full capacity — the
    /// STP/ANTT reference.
    pub alone_cycles: u64,
    /// Measured co-run cycles at the granted budget.
    pub corun_cycles: u64,
}

impl FleetJob {
    /// (completion − arrival) / alone — the ANTT contribution,
    /// queueing delay included.
    pub fn normalized_turnaround(&self) -> f64 {
        (self.completion - self.arrival) as f64 / self.alone_cycles.max(1) as f64
    }
}

/// One dispatched co-run group.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetGroup {
    /// Device index the group ran on.
    pub device: usize,
    /// Dispatch cycle.
    pub start: u64,
    /// Cycle the device freed (start + group makespan).
    pub end: u64,
    /// Member job ids, seeding order.
    pub jobs: Vec<JobId>,
    /// Σ alone/corun over members — the paper's per-group STP on this
    /// device.
    pub stp: f64,
}

/// Full record of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// `"fleet"` (marginal-gain budgeting) or `"fcfs"` (whole-device
    /// baseline).
    pub mode: String,
    /// Admission-queue bound in force.
    pub queue_capacity: usize,
    /// Per-device utilization rows, spec order.
    pub devices: Vec<FleetDevice>,
    /// Completed jobs, sorted by id.
    pub jobs: Vec<FleetJob>,
    /// Arrivals bounced off the full queue.
    pub rejections: Vec<Rejection>,
    /// Dispatched groups, dispatch order.
    pub groups: Vec<FleetGroup>,
    /// Downgrades taken while planning.
    pub degradations: Vec<Degradation>,
    /// Jobs whose (shadow-)planned device changed between consecutive
    /// allocation epochs.
    pub churn: u64,
    /// Cycle the last group ended.
    pub makespan: u64,
}

impl FleetReport {
    /// Cross-device system throughput: mean over dispatched groups of
    /// Σ alone/corun. The whole-device FCFS baseline scores exactly
    /// 1.0 per group, so "beats FCFS" means this exceeds 1.0.
    pub fn stp(&self) -> f64 {
        if self.groups.is_empty() {
            return 0.0;
        }
        self.groups.iter().map(|g| g.stp).sum::<f64>() / self.groups.len() as f64
    }

    /// Average normalized turnaround time across devices, queueing
    /// delay included. 0 when nothing ran.
    pub fn antt(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(FleetJob::normalized_turnaround)
            .sum::<f64>()
            / self.jobs.len() as f64
    }

    /// Fraction of the run a device spent busy (0 when nothing ran).
    pub fn utilization(&self, device: usize) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        self.devices[device].busy_cycles as f64 / self.makespan as f64
    }

    /// Canonical JSON rendering; see the module docs.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + self.jobs.len() * 160);
        s.push_str("{\n");
        s.push_str(&format!("  \"mode\": \"{}\",\n", esc(&self.mode)));
        s.push_str(&format!("  \"queue_capacity\": {},\n", self.queue_capacity));
        s.push_str(&format!("  \"makespan\": {},\n", self.makespan));
        s.push_str(&format!("  \"stp\": {},\n", fmt_f64(self.stp())));
        s.push_str(&format!("  \"antt\": {},\n", fmt_f64(self.antt())));
        s.push_str(&format!("  \"churn\": {},\n", self.churn));

        s.push_str("  \"devices\": [");
        for (i, d) in self.devices.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"id\":\"{}\",\"num_sms\":{},\"groups\":{},\"busy_cycles\":{},\"utilization\":{}}}",
                esc(&d.id),
                d.num_sms,
                d.groups,
                d.busy_cycles,
                fmt_f64(self.utilization(i)),
            ));
        }
        s.push_str(if self.devices.is_empty() { "],\n" } else { "\n  ],\n" });

        s.push_str("  \"jobs\": [");
        for (i, j) in self.jobs.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"id\":{},\"bench\":\"{}\",\"device\":{},\"arrival\":{},\"dispatch\":{},\"completion\":{},\"budget_sms\":{},\"alone_cycles\":{},\"corun_cycles\":{}}}",
                j.id, j.bench, j.device, j.arrival, j.dispatch, j.completion,
                j.budget_sms, j.alone_cycles, j.corun_cycles,
            ));
        }
        s.push_str(if self.jobs.is_empty() { "],\n" } else { "\n  ],\n" });

        s.push_str("  \"groups\": [");
        for (i, g) in self.groups.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            let ids: Vec<String> = g.jobs.iter().map(|id| id.to_string()).collect();
            s.push_str(&format!(
                "    {{\"device\":{},\"start\":{},\"end\":{},\"jobs\":[{}],\"stp\":{}}}",
                g.device,
                g.start,
                g.end,
                ids.join(","),
                fmt_f64(g.stp),
            ));
        }
        s.push_str(if self.groups.is_empty() { "],\n" } else { "\n  ],\n" });

        s.push_str("  \"rejections\": [");
        for (i, r) in self.rejections.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!(
                "    {{\"job\":{},\"bench\":\"{}\",\"at\":{},\"capacity\":{}}}",
                r.job, r.bench, r.at, r.capacity,
            ));
        }
        s.push_str(if self.rejections.is_empty() { "],\n" } else { "\n  ],\n" });

        s.push_str("  \"degradations\": [");
        for (i, d) in self.degradations.iter().enumerate() {
            s.push_str(if i == 0 { "\n" } else { ",\n" });
            s.push_str(&format!("    \"{}\"", esc(&d.to_string())));
        }
        s.push_str(if self.degradations.is_empty() { "]\n" } else { "\n  ]\n" });
        s.push('}');
        s.push('\n');
        s
    }
}

/// Shortest-round-trip float rendering with a guaranteed decimal point
/// (same contract as `SchedReport`'s).
fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FleetReport {
        FleetReport {
            mode: "fleet".into(),
            queue_capacity: 4,
            devices: vec![
                FleetDevice { id: "gpu0".into(), num_sms: 8, groups: 1, busy_cycles: 50 },
                FleetDevice { id: "gpu1".into(), num_sms: 15, groups: 0, busy_cycles: 0 },
            ],
            jobs: vec![FleetJob {
                id: 0,
                bench: Benchmark::Gups,
                device: 0,
                arrival: 0,
                dispatch: 10,
                completion: 60,
                budget_sms: 5,
                alone_cycles: 40,
                corun_cycles: 50,
            }],
            rejections: vec![],
            groups: vec![FleetGroup {
                device: 0,
                start: 10,
                end: 60,
                jobs: vec![0],
                stp: 0.8,
            }],
            degradations: vec![],
            churn: 2,
            makespan: 100,
        }
    }

    #[test]
    fn metrics_follow_the_paper_shapes() {
        let r = report();
        assert!((r.stp() - 0.8).abs() < 1e-12);
        assert!((r.antt() - 1.5).abs() < 1e-12);
        assert!((r.utilization(0) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(1), 0.0);
    }

    #[test]
    fn json_is_canonical_and_stable() {
        let r = report();
        let j = r.to_json();
        assert_eq!(j, r.clone().to_json(), "deterministic rendering");
        assert!(j.starts_with("{\n  \"mode\": \"fleet\",\n"));
        assert!(j.contains("\"utilization\":0.5"));
        assert!(j.contains("\"budget_sms\":5"));
        assert!(j.contains("\"rejections\": []"));
        assert!(j.ends_with("\"degradations\": []\n}\n"));
        // Floats always carry a decimal point.
        assert!(j.contains("\"stp\": 0.8"));
        assert!(j.contains("\"antt\": 1.5"));
    }

    #[test]
    fn empty_report_renders_empty_arrays() {
        let r = FleetReport {
            mode: "fleet".into(),
            queue_capacity: 1,
            devices: vec![],
            jobs: vec![],
            rejections: vec![],
            groups: vec![],
            degradations: vec![],
            churn: 0,
            makespan: 0,
        };
        let j = r.to_json();
        assert!(j.contains("\"devices\": [],\n"));
        assert!(j.contains("\"jobs\": [],\n"));
        assert_eq!(r.stp(), 0.0);
        assert_eq!(r.antt(), 0.0);
    }
}
