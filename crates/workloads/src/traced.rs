//! Hand-authored trace workloads — kernels the parametric pattern
//! generators in `gcs-sim` cannot express.
//!
//! The synthetic [`KernelDesc`](gcs_sim::kernel::KernelDesc) generators
//! draw every address of a pattern from one fixed walk rule for the
//! whole run. Two workload shapes the thesis' trace-driven methodology
//! cares about break that assumption:
//!
//! * **Phase changes** ([`phase_shift_trace`]): a kernel that streams
//!   sequentially for its first half and scatters randomly for its
//!   second. The profile signals (bandwidth, `R`, IPC) are a blend no
//!   single `PatternKind` produces.
//! * **Tensor-op mixes** ([`tensor_mix_trace`]): a DL-style inner loop
//!   that reuses a small weight tile for several iterations before
//!   rotating to the next tile, while activations and outputs stream
//!   past. The `Tiled` generator pins each block to one tile forever;
//!   rotation is inexpressible.
//!
//! Both are authored with [`TraceBuilder`] and replay through the full
//! stack — `Gpu`, the sweep engine, classification, SMRA and
//! `gcs-sched` — via [`Gpu::launch_traced`](gcs_sim::gpu::Gpu::launch_traced).
//!
//! Addresses follow the recorder's convention: relative to the app's
//! base, with pattern `p`'s region starting at `p << 36`, line-aligned.

use gcs_sim::config::GpuConfig;
use gcs_sim::kernel::{AccessPattern, Op, PatternId};
use gcs_sim::rng::SimRng;
use gcs_sim::{KernelTrace, TraceBuilder};

/// Byte offset separating consecutive pattern regions (mirrors the
/// simulator's address-map layout).
const REGION: u64 = 1 << 36;

/// A phase-changing kernel: coalesced streaming for the first half of
/// each warp's iterations, seeded random scatter for the second half.
///
/// The address stream is deterministic (fixed [`SimRng`] seed), so the
/// trace — and everything computed from it, including its fingerprint —
/// is stable across builds and machines.
pub fn phase_shift_trace(cfg: &GpuConfig) -> KernelTrace {
    let line = u64::from(cfg.l1.line_bytes);
    let ws: u64 = 1 << 22;
    let ws_lines = ws / line;
    let (grid, wpb, iters) = (16u32, 2u32, 64u32);
    let total_warps = u64::from(grid) * u64::from(wpb);
    let mut rng = SimRng::seed_from_u64(0x5EED_FA5E);
    let mut b = TraceBuilder::new("TRACE_PHASE", cfg)
        .geometry(grid, wpb, iters, 32)
        .body(vec![Op::Load(PatternId(0)), Op::Alu { latency: 4 }])
        .patterns(vec![AccessPattern::streaming(ws)]);
    for w in 0..total_warps {
        for i in 0..u64::from(iters) {
            let line_idx = if i < u64::from(iters) / 2 {
                // Streaming phase: warp-interleaved sequential walk.
                (w + i * total_warps) % ws_lines
            } else {
                // Scatter phase: seeded random lines.
                rng.gen_range(ws_lines)
            };
            b = b.push_access(w, vec![line_idx * line]);
        }
    }
    b.build().expect("authored phase-shift trace is valid")
}

/// A DL-style tensor-op mix: each iteration loads a line of a weight
/// tile (reused for [`TILE_REUSE`] iterations, then rotated), loads a
/// streaming activation line, computes, and stores a streaming output
/// line.
pub fn tensor_mix_trace(cfg: &GpuConfig) -> KernelTrace {
    let line = u64::from(cfg.l1.line_bytes);
    let weights_ws: u64 = 256 << 10;
    let act_ws: u64 = 1 << 22;
    let out_ws: u64 = 1 << 22;
    let tile: u64 = 8 << 10;
    let (grid, wpb, iters) = (16u32, 2u32, 48u32);
    let total_warps = u64::from(grid) * u64::from(wpb);
    let tiles = weights_ws / tile;
    let tile_lines = tile / line;
    let mut b = TraceBuilder::new("TRACE_TENSOR", cfg)
        .geometry(grid, wpb, iters, 32)
        .body(vec![
            Op::Load(PatternId(0)),
            Op::Load(PatternId(1)),
            Op::Alu { latency: 4 },
            Op::Alu { latency: 4 },
            Op::Store(PatternId(2)),
        ])
        .patterns(vec![
            AccessPattern::tiled(weights_ws, tile),
            AccessPattern::streaming(act_ws),
            AccessPattern::streaming(out_ws),
        ]);
    for w in 0..total_warps {
        let block = w / u64::from(wpb);
        let warp_in_block = w % u64::from(wpb);
        for i in 0..u64::from(iters) {
            // Weights: the block's tile rotates every TILE_REUSE
            // iterations — the reuse window no generator expresses.
            let tile_idx = (block + i / TILE_REUSE) % tiles;
            let l0 = tile_idx * tile_lines + (warp_in_block + i) % tile_lines;
            b = b.push_access(w, vec![l0 * line]);
            // Activations: warp-interleaved stream.
            let l1 = (w + i * total_warps) % (act_ws / line);
            b = b.push_access(w, vec![REGION + l1 * line]);
            // Outputs: warp-interleaved stream in its own region.
            let l2 = (w + i * total_warps) % (out_ws / line);
            b = b.push_access(w, vec![2 * REGION + l2 * line]);
        }
    }
    b.build().expect("authored tensor-mix trace is valid")
}

/// Iterations each weight tile is reused for before rotating.
pub const TILE_REUSE: u64 = 8;

#[cfg(test)]
mod tests {
    use super::*;
    use gcs_sim::gpu::Gpu;
    use std::sync::Arc;

    #[test]
    fn authored_traces_validate_and_round_trip() {
        let cfg = GpuConfig::test_small();
        for trace in [phase_shift_trace(&cfg), tensor_mix_trace(&cfg)] {
            trace.validate().expect("authored trace validates");
            let back = KernelTrace::decode(&trace.encode()).expect("round trip");
            assert_eq!(back, trace);
        }
    }

    #[test]
    fn authored_traces_have_distinct_stable_fingerprints() {
        let cfg = GpuConfig::test_small();
        let a = phase_shift_trace(&cfg);
        let b = tensor_mix_trace(&cfg);
        assert_ne!(a.fingerprint(), b.fingerprint());
        // Deterministic authoring: rebuilding yields the same bytes.
        assert_eq!(a.encode(), phase_shift_trace(&cfg).encode());
        assert_eq!(b.encode(), tensor_mix_trace(&cfg).encode());
    }

    #[test]
    fn authored_traces_replay_to_completion() {
        let cfg = GpuConfig::test_small();
        for trace in [phase_shift_trace(&cfg), tensor_mix_trace(&cfg)] {
            let expected = trace.kernel_desc().total_thread_instructions();
            let mut gpu = Gpu::new(cfg.clone()).unwrap();
            let app = gpu.launch_traced(Arc::new(trace)).unwrap();
            gpu.partition_even();
            gpu.run(50_000_000).unwrap();
            let s = gpu.stats().app(app);
            assert!(s.finished());
            assert_eq!(s.thread_insts, expected);
        }
    }
}
