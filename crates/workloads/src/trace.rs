//! Arrival traces for online (arrival-driven) scheduling.
//!
//! The thesis treats the workload as a static queue solved once; the
//! online scheduler (`gcs-sched`) instead consumes an [`ArrivalTrace`]:
//! a time-ordered list of jobs, each a [`Benchmark`] arriving at a
//! device-cycle timestamp. This module provides
//!
//! * seeded generators — [`ArrivalTrace::poisson`] (memoryless traffic),
//!   [`ArrivalTrace::poisson_from_queue`] (Poisson timing over an exact
//!   benchmark mix) and [`ArrivalTrace::bursty`] (arrival clumps) — all
//!   driven by [`SimRng`](gcs_sim::rng::SimRng) so a trace is a pure
//!   function of its seed;
//! * the degenerate batch trace [`ArrivalTrace::all_at`], which turns
//!   any static queue into a trace (the equivalence pin between the
//!   online scheduler and the batch pipeline rests on it);
//! * a line-oriented JSON interchange format
//!   ([`ArrivalTrace::to_json`] / [`ArrivalTrace::from_json`]) so traces
//!   can be captured, replayed and diffed;
//! * [`queue_from_trace`], recovering the static arrival-order queue the
//!   batch pipeline expects.
//!
//! Exponential inter-arrival gaps are sampled with an in-crate natural
//! logarithm built only from IEEE-754 add/mul/divide (see
//! [`deterministic_ln`]), not `f64::ln`, so generated timestamps are
//! bit-identical across platforms and libm implementations — the same
//! portability standard the simulator holds itself to.

use gcs_sim::rng::SimRng;

use crate::Benchmark;

/// One job arrival: `bench` enters the admission queue at device cycle
/// `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival timestamp in device cycles.
    pub time: u64,
    /// The benchmark the job runs.
    pub bench: Benchmark,
}

/// A time-ordered job arrival sequence.
///
/// Invariant: arrivals are sorted by `time`; ties keep generation order
/// (stable), which is also the admission order schedulers must use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrivalTrace {
    arrivals: Vec<Arrival>,
}

/// Errors from [`ArrivalTrace::from_json`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The text is not the `{"arrivals":[...]}` shape this module writes.
    Malformed(String),
    /// An arrival names a benchmark outside the 14-app suite.
    UnknownBenchmark(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Malformed(why) => write!(f, "malformed trace JSON: {why}"),
            TraceError::UnknownBenchmark(name) => {
                write!(f, "trace names unknown benchmark {name:?}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl ArrivalTrace {
    /// A trace from explicit arrivals. Sorts by time (stable, so equal
    /// timestamps keep their given order).
    pub fn new(mut arrivals: Vec<Arrival>) -> Self {
        arrivals.sort_by_key(|a| a.time);
        ArrivalTrace { arrivals }
    }

    /// The batch degenerate case: every job of `queue` arrives at
    /// `time`, in queue order. An online scheduler fed this trace sees
    /// exactly the static queue the batch pipeline solves.
    pub fn all_at(time: u64, queue: &[Benchmark]) -> Self {
        ArrivalTrace {
            arrivals: queue.iter().map(|&bench| Arrival { time, bench }).collect(),
        }
    }

    /// `n` arrivals with exponential inter-arrival gaps (mean
    /// `mean_gap` cycles — a Poisson process) and benchmarks drawn
    /// uniformly from `pool`. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty or `mean_gap` is not finite and
    /// positive.
    pub fn poisson(pool: &[Benchmark], n: usize, mean_gap: f64, seed: u64) -> Self {
        assert!(!pool.is_empty(), "empty benchmark pool");
        let mut rng = SimRng::seed_from_u64(seed ^ 0x7261_6365_706f_6973); // "poisrace"
        let mut t = 0u64;
        let arrivals = (0..n)
            .map(|_| {
                t = t.saturating_add(exp_gap(&mut rng, mean_gap));
                let bench = pool[rng.gen_range(pool.len() as u64) as usize];
                Arrival { time: t, bench }
            })
            .collect();
        ArrivalTrace { arrivals }
    }

    /// Poisson arrival *times* over an exact benchmark sequence: job `i`
    /// runs `queue[i]`, so the trace census equals the queue census
    /// (e.g. the thesis 14-app mix) while timing stays memoryless.
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap` is not finite and positive.
    pub fn poisson_from_queue(queue: &[Benchmark], mean_gap: f64, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x7175_6575_6500_0000); // "queue"
        let mut t = 0u64;
        let arrivals = queue
            .iter()
            .map(|&bench| {
                t = t.saturating_add(exp_gap(&mut rng, mean_gap));
                Arrival { time: t, bench }
            })
            .collect();
        ArrivalTrace { arrivals }
    }

    /// Bursty traffic: `bursts` clumps at exponentially-spaced starts
    /// (mean `burst_gap` cycles), each an *atomic* batch of `burst_len`
    /// same-timestamp jobs drawn uniformly from `pool` — the arrival
    /// pattern that stresses admission backpressure hardest.
    /// Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty or `burst_gap` is not finite and
    /// positive.
    pub fn bursty(
        pool: &[Benchmark],
        bursts: usize,
        burst_len: usize,
        burst_gap: f64,
        seed: u64,
    ) -> Self {
        assert!(!pool.is_empty(), "empty benchmark pool");
        let mut rng = SimRng::seed_from_u64(seed ^ 0x6275_7273_7479_0000); // "bursty"
        let mut t = 0u64;
        let mut arrivals = Vec::with_capacity(bursts * burst_len);
        for _ in 0..bursts {
            t = t.saturating_add(exp_gap(&mut rng, burst_gap));
            for _ in 0..burst_len {
                let bench = pool[rng.gen_range(pool.len() as u64) as usize];
                arrivals.push(Arrival { time: t, bench });
            }
        }
        ArrivalTrace { arrivals }
    }

    /// Fleet-shaped traffic: `waves` same-timestamp batches of
    /// `wave_len` jobs at fixed `gap`-cycle spacing, benchmarks drawn
    /// uniformly from `pool`. Where [`ArrivalTrace::bursty`] stresses
    /// one queue's backpressure with memoryless clump starts, the fixed
    /// cadence here feeds a multi-device allocator a fresh placement
    /// decision per wave — each wave must be split *across* devices, so
    /// per-wave allocation (and cross-wave churn) is exercised rather
    /// than queue depth. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `pool` is empty or `gap` is 0.
    pub fn waves(pool: &[Benchmark], waves: usize, wave_len: usize, gap: u64, seed: u64) -> Self {
        assert!(!pool.is_empty(), "empty benchmark pool");
        assert!(gap > 0, "wave gap must be at least 1 cycle");
        let mut rng = SimRng::seed_from_u64(seed ^ 0x7761_7665_7300_0000); // "waves"
        let mut arrivals = Vec::with_capacity(waves * wave_len);
        for w in 0..waves {
            let t = (w as u64).saturating_mul(gap);
            for _ in 0..wave_len {
                let bench = pool[rng.gen_range(pool.len() as u64) as usize];
                arrivals.push(Arrival { time: t, bench });
            }
        }
        ArrivalTrace { arrivals }
    }

    /// The arrivals, sorted by time (ties in admission order).
    pub fn arrivals(&self) -> &[Arrival] {
        &self.arrivals
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.arrivals.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.arrivals.is_empty()
    }

    /// Serializes the trace as compact single-line JSON:
    /// `{"arrivals":[{"t":0,"bench":"GUPS"},...]}`. Deterministic:
    /// identical traces render byte-identically.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(16 + self.arrivals.len() * 28);
        s.push_str("{\"arrivals\":[");
        for (i, a) in self.arrivals.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("{\"t\":");
            s.push_str(&a.time.to_string());
            s.push_str(",\"bench\":\"");
            s.push_str(a.bench.name());
            s.push_str("\"}");
        }
        s.push_str("]}");
        s
    }

    /// Parses the format [`ArrivalTrace::to_json`] writes (whitespace
    /// between tokens is tolerated). The result is re-sorted by time, so
    /// hand-edited traces need not be ordered.
    ///
    /// # Errors
    ///
    /// [`TraceError::Malformed`] on any structural mismatch,
    /// [`TraceError::UnknownBenchmark`] for names outside the suite.
    pub fn from_json(text: &str) -> Result<Self, TraceError> {
        let bad = |why: &str| TraceError::Malformed(why.to_string());
        let rest = text.trim();
        let rest = rest.strip_prefix('{').ok_or_else(|| bad("missing '{'"))?;
        let rest = rest.trim_start();
        let rest = rest
            .strip_prefix("\"arrivals\"")
            .ok_or_else(|| bad("missing \"arrivals\" key"))?;
        let rest = rest.trim_start();
        let rest = rest.strip_prefix(':').ok_or_else(|| bad("missing ':'"))?;
        let rest = rest.trim_start();
        let mut rest = rest.strip_prefix('[').ok_or_else(|| bad("missing '['"))?;

        let mut arrivals = Vec::new();
        loop {
            rest = rest.trim_start();
            if let Some(tail) = rest.strip_prefix(']') {
                let tail = tail.trim_start();
                let tail = tail.strip_suffix('}').ok_or_else(|| bad("missing final '}'"))?;
                if !tail.trim().is_empty() {
                    return Err(bad("trailing content after trace object"));
                }
                break;
            }
            if !arrivals.is_empty() {
                rest = rest
                    .strip_prefix(',')
                    .ok_or_else(|| bad("missing ',' between arrivals"))?
                    .trim_start();
            }
            let (arrival, tail) = parse_arrival(rest)?;
            arrivals.push(arrival);
            rest = tail;
        }
        Ok(ArrivalTrace::new(arrivals))
    }
}

/// The static arrival-order queue of a trace — what
/// `Pipeline::run_queue` consumes. Composing this with
/// [`ArrivalTrace::all_at`] round-trips exactly.
pub fn queue_from_trace(trace: &ArrivalTrace) -> Vec<Benchmark> {
    trace.arrivals().iter().map(|a| a.bench).collect()
}

/// Replays a trace against the wall clock in *open-loop* mode.
///
/// Arrival cycles map to wall time through a `cycles_per_sec` rate;
/// [`Iterator::next`] sleeps until the arrival is due, then yields it
/// together with how late it is being delivered (zero when the driver
/// kept up). Open-loop means submission timing is dictated by the
/// trace, never by how fast the consumer answers — the pacing that
/// exposes queue growth and backpressure in a scheduler daemon, where
/// closed-loop (wait-then-send) load generation would hide overload by
/// slowing down with the server.
#[derive(Debug)]
pub struct OpenLoopDriver<'a> {
    arrivals: std::slice::Iter<'a, Arrival>,
    cycles_per_sec: f64,
    started: std::time::Instant,
}

impl<'a> OpenLoopDriver<'a> {
    /// Paces `trace` at `rate` simulated cycles per wall second. The
    /// clock starts now.
    ///
    /// # Panics
    ///
    /// If `cycles_per_sec` is not finite and positive.
    pub fn new(trace: &'a ArrivalTrace, cycles_per_sec: f64) -> Self {
        assert!(
            cycles_per_sec.is_finite() && cycles_per_sec > 0.0,
            "cycles_per_sec must be finite and positive (got {cycles_per_sec})"
        );
        OpenLoopDriver {
            arrivals: trace.arrivals().iter(),
            cycles_per_sec,
            started: std::time::Instant::now(),
        }
    }

    /// Wall-clock offset from the start at which `time` cycles are due.
    fn due(&self, time: u64) -> std::time::Duration {
        std::time::Duration::from_secs_f64(time as f64 / self.cycles_per_sec)
    }
}

impl<'a> Iterator for OpenLoopDriver<'a> {
    /// The arrival plus its delivery lateness (zero when on time).
    type Item = (&'a Arrival, std::time::Duration);

    fn next(&mut self) -> Option<Self::Item> {
        let a = self.arrivals.next()?;
        let due = self.due(a.time);
        let elapsed = self.started.elapsed();
        if due > elapsed {
            std::thread::sleep(due - elapsed);
            Some((a, std::time::Duration::ZERO))
        } else {
            Some((a, elapsed - due))
        }
    }
}

/// Parses one `{"t":N,"bench":"NAME"}` object, returning the remainder.
fn parse_arrival(text: &str) -> Result<(Arrival, &str), TraceError> {
    let bad = |why: &str| TraceError::Malformed(why.to_string());
    let rest = text.strip_prefix('{').ok_or_else(|| bad("missing arrival '{'"))?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix("\"t\"")
        .ok_or_else(|| bad("missing \"t\" key"))?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix(':').ok_or_else(|| bad("missing ':' after \"t\""))?;
    let rest = rest.trim_start();
    let digits = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if digits == 0 {
        return Err(bad("missing arrival time"));
    }
    let time: u64 = rest[..digits]
        .parse()
        .map_err(|_| bad("arrival time out of range"))?;
    let rest = rest[digits..].trim_start();
    let rest = rest
        .strip_prefix(',')
        .ok_or_else(|| bad("missing ',' after time"))?
        .trim_start();
    let rest = rest
        .strip_prefix("\"bench\"")
        .ok_or_else(|| bad("missing \"bench\" key"))?;
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or_else(|| bad("missing ':' after \"bench\""))?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"').ok_or_else(|| bad("missing name quote"))?;
    let q = rest.find('"').ok_or_else(|| bad("unterminated name"))?;
    let name = &rest[..q];
    let bench = Benchmark::from_name(name)
        .ok_or_else(|| TraceError::UnknownBenchmark(name.to_string()))?;
    let rest = rest[q + 1..].trim_start();
    let rest = rest.strip_prefix('}').ok_or_else(|| bad("missing arrival '}'"))?;
    Ok((Arrival { time, bench }, rest))
}

/// One exponential inter-arrival gap with the given mean, rounded to
/// whole cycles. Uses [`deterministic_ln`], so the draw is
/// platform-independent.
fn exp_gap(rng: &mut SimRng, mean: f64) -> u64 {
    assert!(
        mean.is_finite() && mean > 0.0,
        "mean inter-arrival gap must be finite and positive (got {mean})"
    );
    // 1 - U is in (0, 1]; ln of it is <= 0, so the gap is >= 0.
    let u = rng.gen_f64();
    let gap = -deterministic_ln(1.0 - u) * mean;
    // Cap at u64::MAX rather than wrapping (astronomical draws only).
    if gap >= u64::MAX as f64 {
        u64::MAX
    } else {
        gap.round() as u64
    }
}

/// Natural logarithm from IEEE-754 primitives only.
///
/// `f64::ln` routes to the platform libm, which is deterministic on one
/// machine but not guaranteed bit-identical *across* platforms. This
/// implementation uses only add/sub/mul/div — operations IEEE 754
/// requires to be correctly rounded — so traces generated from a seed
/// are bit-identical everywhere.
///
/// Method: decompose `x = m·2^e` with `m ∈ [√2/2, √2)`, then
/// `ln m = 2·atanh(t)` for `t = (m−1)/(m+1)` via its odd Taylor series.
/// With `|t| ≤ 0.1716` the truncation error of the 8-term series is
/// below 1e-16 relative — beyond double precision.
///
/// Domain: finite `x > 0` (callers feed `1 - U ∈ (0, 1]`); returns NaN
/// for zero, negatives and non-finite inputs.
pub fn deterministic_ln(x: f64) -> f64 {
    // NaN falls through the first comparison and is caught by the
    // finiteness check.
    if x <= 0.0 || !x.is_finite() {
        return f64::NAN;
    }
    const SQRT2: f64 = std::f64::consts::SQRT_2;
    const LN2: f64 = std::f64::consts::LN_2;

    // Normalize subnormals by scaling up 2^64 (exact).
    let (x, bias) = if x < f64::MIN_POSITIVE {
        (x * 18_446_744_073_709_551_616.0, -64i64)
    } else {
        (x, 0i64)
    };
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023 + bias;
    // Mantissa in [1, 2).
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    if m >= SQRT2 {
        m *= 0.5;
        e += 1;
    }

    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    // atanh series, Horner form: t + t^3/3 + t^5/5 + ... + t^15/15.
    let series = t
        * (1.0
            + t2 * (1.0 / 3.0
                + t2 * (1.0 / 5.0
                    + t2 * (1.0 / 7.0
                        + t2 * (1.0 / 9.0
                            + t2 * (1.0 / 11.0 + t2 * (1.0 / 13.0 + t2 * (1.0 / 15.0))))))));
    2.0 * series + e as f64 * LN2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_ln_matches_libm() {
        // Not bit-equality (libm varies); agreement to ~2 ulps over the
        // whole domain the generators use is the correctness bar.
        let mut worst = 0.0f64;
        for i in 1..=100_000u64 {
            let x = i as f64 / 100_000.0; // (0, 1]
            let got = deterministic_ln(x);
            let want = x.ln();
            let tol = want.abs().max(1.0) * 5e-14;
            assert!((got - want).abs() <= tol, "ln({x}) = {got}, libm {want}");
            worst = worst.max((got - want).abs());
        }
        // Spot checks outside (0, 1].
        assert_eq!(deterministic_ln(1.0), 0.0);
        assert!((deterministic_ln(std::f64::consts::E) - 1.0).abs() < 1e-14);
        assert!((deterministic_ln(1e300) - 690.7755278982137).abs() < 1e-9);
        assert!((deterministic_ln(1e-300) + 690.7755278982137).abs() < 1e-9);
        assert!(deterministic_ln(0.0).is_nan());
        assert!(deterministic_ln(-1.0).is_nan());
        assert!(deterministic_ln(f64::INFINITY).is_nan());
        // Subnormal inputs still resolve.
        let sub = f64::from_bits(1); // smallest positive subnormal
        assert!(deterministic_ln(sub) < -744.0 && deterministic_ln(sub) > -746.0);
        let _ = worst;
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let a = ArrivalTrace::poisson(&Benchmark::ALL, 100, 5_000.0, 7);
        let b = ArrivalTrace::poisson(&Benchmark::ALL, 100, 5_000.0, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.arrivals().windows(2).all(|w| w[0].time <= w[1].time));
        let c = ArrivalTrace::poisson(&Benchmark::ALL, 100, 5_000.0, 8);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn poisson_mean_gap_is_plausible() {
        let n = 4000;
        let mean = 10_000.0;
        let t = ArrivalTrace::poisson(&Benchmark::ALL, n, mean, 3);
        let last = t.arrivals().last().unwrap().time as f64;
        let got = last / n as f64;
        assert!(
            (got / mean - 1.0).abs() < 0.10,
            "empirical mean gap {got} vs requested {mean}"
        );
    }

    /// Golden pin: the first 20 arrivals of the canonical seeded trace.
    /// If this changes, every committed `results/sched/*.json` and the
    /// determinism guarantees of `tests/sched.rs` silently shift — bump
    /// them together, deliberately.
    #[test]
    fn golden_first_20_arrivals_seed_42() {
        let t = ArrivalTrace::poisson(&Benchmark::ALL, 20, 10_000.0, 42);
        let got: Vec<(u64, &str)> = t
            .arrivals()
            .iter()
            .map(|a| (a.time, a.bench.name()))
            .collect();
        let want: Vec<(u64, &str)> = vec![
            (9027, "LPS"),
            (10615, "LUD"),
            (24844, "GUPS"),
            (35925, "BLK"),
            (45003, "3DS"),
            (46671, "3DS"),
            (60334, "HS"),
            (65603, "BLK"),
            (101224, "BP"),
            (107612, "BFS2"),
            (124866, "BLK"),
            (125341, "LUD"),
            (131899, "BLK"),
            (132729, "BLK"),
            (135720, "BP"),
            (138532, "LPS"),
            (144930, "3DS"),
            (155630, "SAD"),
            (155675, "BLK"),
            (158475, "RAY"),
        ];
        assert_eq!(got, want, "golden arrival pin moved");
    }

    #[test]
    fn all_at_round_trips_through_queue() {
        let queue = vec![Benchmark::Gups, Benchmark::Sad, Benchmark::Gups];
        let t = ArrivalTrace::all_at(0, &queue);
        assert_eq!(queue_from_trace(&t), queue);
        assert!(t.arrivals().iter().all(|a| a.time == 0));
    }

    #[test]
    fn bursty_produces_atomic_same_time_clumps() {
        let t = ArrivalTrace::bursty(&Benchmark::ALL, 5, 4, 50_000.0, 11);
        assert_eq!(t.len(), 20);
        let times: Vec<u64> = t.arrivals().iter().map(|a| a.time).collect();
        // Exactly 5 distinct burst timestamps, each shared by 4 jobs.
        let mut distinct = times.clone();
        distinct.dedup();
        assert_eq!(distinct.len(), 5, "bursts must not interleave: {times:?}");
        for w in times.chunks(4) {
            assert!(w.iter().all(|&x| x == w[0]));
        }
        assert_eq!(t, ArrivalTrace::bursty(&Benchmark::ALL, 5, 4, 50_000.0, 11));
    }

    #[test]
    fn waves_arrive_on_a_fixed_cadence() {
        let t = ArrivalTrace::waves(&Benchmark::ALL, 4, 3, 10_000, 7);
        assert_eq!(t.len(), 12);
        let times: Vec<u64> = t.arrivals().iter().map(|a| a.time).collect();
        // Wave w lands exactly at w * gap, all members together.
        for (w, chunk) in times.chunks(3).enumerate() {
            assert!(chunk.iter().all(|&x| x == w as u64 * 10_000), "{times:?}");
        }
        assert_eq!(t, ArrivalTrace::waves(&Benchmark::ALL, 4, 3, 10_000, 7));
        // A different seed reshuffles benches but keeps the cadence.
        let u = ArrivalTrace::waves(&Benchmark::ALL, 4, 3, 10_000, 8);
        assert_eq!(
            u.arrivals().iter().map(|a| a.time).collect::<Vec<_>>(),
            times
        );
    }

    #[test]
    fn poisson_from_queue_preserves_census_exactly() {
        let queue = vec![
            Benchmark::Gups,
            Benchmark::Gups,
            Benchmark::Sad,
            Benchmark::Lud,
        ];
        let t = ArrivalTrace::poisson_from_queue(&queue, 1_000.0, 5);
        assert_eq!(queue_from_trace(&t), queue, "bench order must be the queue");
        assert!(t.arrivals().windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn json_round_trips_exactly() {
        for trace in [
            ArrivalTrace::poisson(&Benchmark::ALL, 50, 3_000.0, 9),
            ArrivalTrace::all_at(17, &[Benchmark::Blk, Benchmark::Nn]),
            ArrivalTrace::new(Vec::new()),
        ] {
            let json = trace.to_json();
            let back = ArrivalTrace::from_json(&json).expect("round trip");
            assert_eq!(back, trace);
            assert_eq!(back.to_json(), json, "render is canonical");
        }
    }

    #[test]
    fn json_parser_accepts_whitespace_and_reorders() {
        let text = r#" { "arrivals" : [ { "t" : 30 , "bench" : "SAD" } ,
                         { "t" : 10 , "bench" : "gups" } ] } "#;
        let t = ArrivalTrace::from_json(text).expect("tolerant parse");
        assert_eq!(t.arrivals()[0].bench, Benchmark::Gups, "re-sorted by time");
        assert_eq!(t.arrivals()[1].time, 30);
    }

    #[test]
    fn json_parser_rejects_garbage() {
        for bad in [
            "",
            "[]",
            "{\"arrivals\":}",
            "{\"arrivals\":[{\"t\":1}]}",
            "{\"arrivals\":[{\"t\":1,\"bench\":\"NOPE\"}]}",
            "{\"arrivals\":[{\"t\":1,\"bench\":\"SAD\"}]",
            "{\"arrivals\":[{\"t\":1,\"bench\":\"SAD\"}]} trailing",
            "{\"arrivals\":[{\"t\":,\"bench\":\"SAD\"}]}",
        ] {
            assert!(
                ArrivalTrace::from_json(bad).is_err(),
                "must reject {bad:?}"
            );
        }
        assert!(matches!(
            ArrivalTrace::from_json("{\"arrivals\":[{\"t\":1,\"bench\":\"NOPE\"}]}"),
            Err(TraceError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn exp_gap_handles_extremes() {
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..1000 {
            let g = exp_gap(&mut rng, 1.0);
            assert!(g < 100, "mean-1 draws stay tiny (got {g})");
        }
    }

    #[test]
    fn open_loop_driver_yields_all_arrivals_in_order() {
        let trace = ArrivalTrace::poisson(&[Benchmark::Gups, Benchmark::Hs], 10, 5_000.0, 3);
        // An astronomically fast clock: everything is already due, so
        // the iterator never sleeps and reports lateness instead.
        let out: Vec<u64> = OpenLoopDriver::new(&trace, 1e18)
            .map(|(a, _late)| a.time)
            .collect();
        let expect: Vec<u64> = trace.arrivals().iter().map(|a| a.time).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn open_loop_driver_paces_to_wall_clock() {
        // Two arrivals 10_000 cycles apart at 1e6 cycles/sec = 10 ms.
        let trace = ArrivalTrace::new(vec![
            Arrival {
                time: 0,
                bench: Benchmark::Gups,
            },
            Arrival {
                time: 10_000,
                bench: Benchmark::Hs,
            },
        ]);
        let start = std::time::Instant::now();
        let n = OpenLoopDriver::new(&trace, 1e6).count();
        assert_eq!(n, 2);
        assert!(
            start.elapsed() >= std::time::Duration::from_millis(9),
            "second arrival must wait for its wall-clock due time"
        );
    }
}
