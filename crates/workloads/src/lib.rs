//! # gcs-workloads — synthetic Rodinia-like GPU kernel models
//!
//! The thesis profiles fourteen Rodinia-suite benchmarks on GPGPU-Sim
//! (Table 3.2) and builds its whole methodology on the four-signal
//! profile each produces: DRAM bandwidth, L2→L1 bandwidth, IPC and the
//! memory-to-compute ratio `R`. Since real CUDA binaries are out of
//! reach for a pure-Rust substrate (repro substitution in `DESIGN.md`),
//! this crate models each benchmark as a synthetic [`KernelDesc`] —
//! an instruction mix plus address-stream parameters — calibrated so
//! that, on the `gcs-sim` GTX 480 model, each lands in the class the
//! thesis assigns it and reproduces its distinctive scalability shape
//! (Fig 3.5):
//!
//! * **GUPS** — random scatter/gather, bandwidth-bound, anti-scales;
//! * **LUD** — 12-block grid, IPC flat in core count;
//! * **HS / SAD** — massively parallel compute, near-ideal scaling;
//! * **FFT** — per-block tiles that spill the shared L2 as concurrency
//!   grows: saturates, then *loses* performance with more cores;
//! * **BFS2 / NN** — low-occupancy, latency-bound, low utilization.
//!
//! ```
//! use gcs_workloads::{Benchmark, Scale};
//!
//! let gups = Benchmark::Gups.kernel(Scale::TEST);
//! assert_eq!(gups.name, "GUPS");
//! assert!(gups.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use gcs_sim::kernel::{AccessPattern, KernelDesc, Op, PatternId};
use gcs_sim::PatternKind;

mod suite;
pub mod trace;
pub mod traced;

pub use suite::{Benchmark, PaperProfile, PAPER_PROFILES};
pub use trace::{queue_from_trace, Arrival, ArrivalTrace, OpenLoopDriver, TraceError};
pub use traced::{phase_shift_trace, tensor_mix_trace};

/// Work scaling applied to a benchmark model.
///
/// The profile *rates* (bandwidths, IPC, R) are scale-invariant; scaling
/// only shrinks total work so unit tests stay fast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Multiplier on loop iterations per warp.
    pub iters: f64,
    /// Multiplier on grid blocks (parallelism). Keep at 1.0 for
    /// scalability studies; reduce for small-device tests.
    pub grid: f64,
}

impl Scale {
    /// Full-size runs for the figure harness (~10⁵–10⁶ device cycles).
    pub const FULL: Scale = Scale {
        iters: 1.0,
        grid: 1.0,
    };

    /// Reduced size for quicker full-device sweeps.
    pub const SMALL: Scale = Scale {
        iters: 0.25,
        grid: 1.0,
    };

    /// Tiny runs for unit tests on [`gcs_sim::GpuConfig::test_small`].
    pub const TEST: Scale = Scale {
        iters: 0.05,
        grid: 0.2,
    };

    fn apply_iters(&self, iters: u32) -> u32 {
        ((f64::from(iters) * self.iters).round() as u32).max(1)
    }

    fn apply_grid(&self, grid: u32) -> u32 {
        ((f64::from(grid) * self.grid).round() as u32).max(1)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::FULL
    }
}

/// Raw model parameters for one benchmark (before scaling).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelParams {
    /// Grid blocks at full scale.
    pub grid_blocks: u32,
    /// Warps per block.
    pub warps_per_block: u32,
    /// Loop iterations per warp at full scale.
    pub iters_per_warp: u32,
    /// Mean active lanes (divergence model).
    pub active_lanes: u8,
    /// ALU ops per loop iteration.
    pub alu_ops: u32,
    /// ALU result latency.
    pub alu_latency: u8,
    /// Memory operations per iteration, in issue order.
    pub mem_ops: Vec<MemOp>,
}

/// One memory operation slot of a model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemOp {
    /// Load or store.
    pub is_store: bool,
    /// Address pattern.
    pub pattern: AccessPattern,
}

impl MemOp {
    pub(crate) fn load(pattern: AccessPattern) -> Self {
        MemOp {
            is_store: false,
            pattern,
        }
    }

    pub(crate) fn store(pattern: AccessPattern) -> Self {
        MemOp {
            is_store: true,
            pattern,
        }
    }
}

impl ModelParams {
    /// Lowers the model into a simulator kernel, interleaving the memory
    /// operations evenly through the ALU stream (real kernels spread
    /// their loads, which lets warp schedulers hide latency).
    ///
    /// # Panics
    ///
    /// Panics if the model declares more than
    /// [`gcs_sim::warp::MAX_PATTERNS`] distinct memory ops.
    pub fn into_kernel(self, name: &str, scale: Scale) -> KernelDesc {
        assert!(
            self.mem_ops.len() <= gcs_sim::warp::MAX_PATTERNS,
            "too many memory ops"
        );
        let mut patterns = Vec::with_capacity(self.mem_ops.len());
        let mut body = Vec::with_capacity(self.alu_ops as usize + self.mem_ops.len());

        let n_mem = self.mem_ops.len() as u32;
        let alu_chunk = if n_mem == 0 {
            self.alu_ops
        } else {
            self.alu_ops / n_mem.max(1)
        };
        let mut alu_left = self.alu_ops;
        for (i, mem) in self.mem_ops.iter().enumerate() {
            let pid = PatternId(i as u8);
            patterns.push(mem.pattern);
            body.push(if mem.is_store {
                Op::Store(pid)
            } else {
                Op::Load(pid)
            });
            let take = alu_chunk.min(alu_left);
            for _ in 0..take {
                body.push(Op::Alu {
                    latency: self.alu_latency,
                });
            }
            alu_left -= take;
        }
        for _ in 0..alu_left {
            body.push(Op::Alu {
                latency: self.alu_latency,
            });
        }
        if body.is_empty() {
            body.push(Op::Alu {
                latency: self.alu_latency,
            });
        }

        KernelDesc {
            name: name.into(),
            grid_blocks: scale.apply_grid(self.grid_blocks),
            warps_per_block: self.warps_per_block,
            iters_per_warp: scale.apply_iters(self.iters_per_warp),
            body,
            patterns,
            active_lanes: self.active_lanes,
        }
    }
}

impl ModelParams {
    /// The SM count beyond which this model stops gaining parallelism:
    /// once every grid block is resident, extra SMs only spread the same
    /// warps thinner. Derived from the per-SM residency caps (block
    /// limit and warp slots) of `cfg`.
    pub fn saturation_sms(&self, cfg: &gcs_sim::GpuConfig) -> u32 {
        let by_warps = (cfg.max_warps_per_sm / self.warps_per_block).max(1);
        let per_sm = cfg.max_blocks_per_sm.min(by_warps);
        self.grid_blocks.div_ceil(per_sm)
    }
}

/// A strided pattern that sweeps a *shared* working set: every SM's L1
/// thrashes (the sweep is much larger than 16 kB) while the L2 retains
/// the whole set — the class-C traffic signature.
pub fn l2_resident_sweep(working_set: u64) -> AccessPattern {
    AccessPattern {
        kind: PatternKind::Strided { stride: 8 * 128 },
        working_set,
        transactions: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_validate() {
        for b in Benchmark::ALL {
            let k = b.kernel(Scale::FULL);
            assert!(
                k.validate().is_ok(),
                "{} invalid: {:?}",
                b.name(),
                k.validate()
            );
            assert!(gcs_sim::warp::check_pattern_limit(&k).is_ok());
        }
    }

    #[test]
    fn names_are_distinct_and_match_paper() {
        let mut names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
        assert!(names.contains(&"GUPS"));
        assert!(names.contains(&"BFS2"));
    }

    #[test]
    fn scaling_shrinks_work() {
        let full = Benchmark::Blk.kernel(Scale::FULL);
        let test = Benchmark::Blk.kernel(Scale::TEST);
        assert!(test.total_warp_instructions() < full.total_warp_instructions() / 10);
    }

    #[test]
    fn scale_never_zeroes_out() {
        let s = Scale {
            iters: 1e-9,
            grid: 1e-9,
        };
        for b in Benchmark::ALL {
            let k = b.kernel(s);
            assert!(k.iters_per_warp >= 1);
            assert!(k.grid_blocks >= 1);
            assert!(k.validate().is_ok());
        }
    }

    #[test]
    fn interleaving_spreads_memory_ops() {
        let p = ModelParams {
            grid_blocks: 1,
            warps_per_block: 1,
            iters_per_warp: 1,
            active_lanes: 32,
            alu_ops: 4,
            alu_latency: 4,
            mem_ops: vec![
                MemOp::load(AccessPattern::streaming(1 << 20)),
                MemOp::store(AccessPattern::streaming(1 << 20)),
            ],
        };
        let k = p.into_kernel("x", Scale::FULL);
        assert_eq!(k.body.len(), 6);
        assert!(matches!(k.body[0], Op::Load(_)));
        assert!(matches!(k.body[3], Op::Store(_)));
    }

    #[test]
    fn saturation_points_match_fig_36_taxonomy() {
        let cfg = gcs_sim::GpuConfig::gtx480();
        let sat = |b: Benchmark| b.params().saturation_sms(&cfg);
        // LUD's 12-block grid fits a couple of SMs: flat in core count.
        assert!(sat(Benchmark::Lud) <= 4, "LUD: {}", sat(Benchmark::Lud));
        // LPS saturates early (the thesis' "moderate parallelism").
        assert!(sat(Benchmark::Lps) <= 15, "LPS: {}", sat(Benchmark::Lps));
        // HS/SAD keep gaining until well past the half-device point, so
        // SMRA has something to reallocate toward.
        assert!(sat(Benchmark::Hs) > 30, "HS: {}", sat(Benchmark::Hs));
        assert!(sat(Benchmark::Sad) > 30, "SAD: {}", sat(Benchmark::Sad));
        // Only the class-M models oversubscribe the device — they are
        // *bandwidth*-saturated long before parallelism saturates, and
        // the surplus blocks keep their co-run pressure up on any
        // partition size.
        for b in Benchmark::ALL {
            if matches!(b, Benchmark::Blk | Benchmark::Gups) {
                continue;
            }
            assert!(sat(b) <= 60, "{b} saturates past the device: {}", sat(b));
        }
    }

    #[test]
    fn class_m_models_oversubscribe_every_partition() {
        // The class-M models must stay bandwidth-saturated even on half
        // the device, or co-run interference would vanish: their warp
        // pool on 30 SMs has to be large.
        let cfg = gcs_sim::GpuConfig::gtx480();
        for b in [Benchmark::Blk, Benchmark::Gups] {
            let p = b.params();
            let by_warps = (cfg.max_warps_per_sm / p.warps_per_block).max(1);
            let per_sm = cfg.max_blocks_per_sm.min(by_warps);
            let resident_on_half = u64::from(per_sm.min(p.grid_blocks / 30)) // approx
                * u64::from(p.warps_per_block)
                * 30;
            assert!(
                resident_on_half >= 700,
                "{b}: only {resident_on_half} warps resident on a half device"
            );
        }
    }

    #[test]
    fn static_memory_ratio_tracks_r_intent() {
        // GUPS is padded with ALU so its static R sits near the paper's 0.1.
        let k = Benchmark::Gups.kernel(Scale::FULL);
        let r = k.static_memory_ratio();
        assert!(r > 0.05 && r < 0.25, "GUPS static R = {r}");
        // HS is nearly pure compute.
        let hs = Benchmark::Hs.kernel(Scale::FULL);
        assert!(hs.static_memory_ratio() < 0.05);
    }
}
