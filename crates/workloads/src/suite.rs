//! The fourteen benchmark models and the thesis' reference profiles.

use gcs_sim::kernel::{AccessPattern, KernelDesc};

use crate::{l2_resident_sweep, MemOp, ModelParams, Scale};

/// Megabyte shorthand.
const MB: u64 = 1 << 20;
/// Kilobyte shorthand.
const KB: u64 = 1 << 10;

/// The Rodinia-suite benchmarks of Table 3.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// Breadth-first search (graph traversal, divergent, cache heavy).
    Bfs2,
    /// Black-Scholes option pricing (streaming, bandwidth bound).
    Blk,
    /// Back-propagation neural network training.
    Bp,
    /// LU decomposition (tiny tiled working set, low parallelism).
    Lud,
    /// Fast Fourier transform (per-block tiles that spill L2 at scale).
    Fft,
    /// JPEG encoding (balanced streaming compute).
    Jpeg,
    /// 3D stencil (streaming plus a shared boundary slab).
    Threeds,
    /// HotSpot thermal simulation (massively parallel compute).
    Hs,
    /// Laplace solver (moderate parallelism, saturating).
    Lps,
    /// Ray tracing (divergent, mixed traffic).
    Ray,
    /// Giga-updates-per-second random access (bandwidth hostile).
    Gups,
    /// Sparse matrix-vector product (cache resident, irregular).
    Spmv,
    /// Sum of absolute differences (video encoding, compute dense).
    Sad,
    /// k-nearest-neighbors (low occupancy, latency bound).
    Nn,
}

impl Benchmark {
    /// All fourteen benchmarks in Table 3.2 order.
    pub const ALL: [Benchmark; 14] = [
        Benchmark::Bfs2,
        Benchmark::Blk,
        Benchmark::Bp,
        Benchmark::Lud,
        Benchmark::Fft,
        Benchmark::Jpeg,
        Benchmark::Threeds,
        Benchmark::Hs,
        Benchmark::Lps,
        Benchmark::Ray,
        Benchmark::Gups,
        Benchmark::Spmv,
        Benchmark::Sad,
        Benchmark::Nn,
    ];

    /// The thesis' name for this benchmark.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Bfs2 => "BFS2",
            Benchmark::Blk => "BLK",
            Benchmark::Bp => "BP",
            Benchmark::Lud => "LUD",
            Benchmark::Fft => "FFT",
            Benchmark::Jpeg => "JPEG",
            Benchmark::Threeds => "3DS",
            Benchmark::Hs => "HS",
            Benchmark::Lps => "LPS",
            Benchmark::Ray => "RAY",
            Benchmark::Gups => "GUPS",
            Benchmark::Spmv => "SPMV",
            Benchmark::Sad => "SAD",
            Benchmark::Nn => "NN",
        }
    }

    /// Looks a benchmark up by its thesis name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// Raw (unscaled) model parameters.
    ///
    /// Calibration notes: on the `gcs-sim` GTX 480 model a kernel's
    /// steady state is set by its *resident warp count* W and per-warp
    /// loop period P (memory latencies + ALU issue), giving
    /// `iters/cycle = W / P`; DRAM bandwidth, L2 traffic and IPC all
    /// follow from the per-iteration footprint. Class M models saturate
    /// the memory system outright; MC/A/C models are occupancy-bound so
    /// they land in the paper's bandwidth bands.
    pub fn params(&self) -> ModelParams {
        match self {
            // ---- class M: memory-bandwidth dominated -------------------
            Benchmark::Blk => ModelParams {
                grid_blocks: 480,
                warps_per_block: 8,
                iters_per_warp: 48,
                active_lanes: 32,
                alu_ops: 39,
                alu_latency: 4,
                mem_ops: vec![
                    MemOp::load(AccessPattern::streaming(64 * MB)),
                    MemOp::load(AccessPattern::streaming(64 * MB)),
                    MemOp::store(AccessPattern::streaming(32 * MB)),
                ],
            },
            Benchmark::Gups => ModelParams {
                grid_blocks: 240,
                warps_per_block: 8,
                iters_per_warp: 14,
                active_lanes: 8,
                alu_ops: 18,
                alu_latency: 4,
                mem_ops: vec![
                    MemOp::load(AccessPattern::random(256 * MB, 8)),
                    MemOp::store(AccessPattern::random(256 * MB, 8)),
                ],
            },

            // ---- class MC: bandwidth + cache --------------------------
            Benchmark::Bp => ModelParams {
                grid_blocks: 200,
                warps_per_block: 1,
                iters_per_warp: 760,
                active_lanes: 32,
                alu_ops: 42,
                alu_latency: 4,
                mem_ops: vec![
                    MemOp::load(AccessPattern::streaming(48 * MB)),
                    MemOp::load(l2_resident_sweep(512 * KB)),
                    MemOp::load(l2_resident_sweep(384 * KB)),
                    MemOp::store(AccessPattern::streaming(24 * MB)),
                ],
            },
            Benchmark::Fft => ModelParams {
                grid_blocks: 220,
                warps_per_block: 1,
                iters_per_warp: 600,
                active_lanes: 24,
                alu_ops: 37,
                alu_latency: 4,
                mem_ops: vec![
                    MemOp::load(AccessPattern::streaming(32 * MB)),
                    MemOp::load(AccessPattern::tiled(24 * MB, 8 * KB)),
                ],
            },
            Benchmark::Threeds => ModelParams {
                grid_blocks: 176,
                warps_per_block: 1,
                iters_per_warp: 960,
                active_lanes: 32,
                alu_ops: 34,
                alu_latency: 4,
                mem_ops: vec![
                    MemOp::load(AccessPattern::streaming(48 * MB)),
                    MemOp::load(l2_resident_sweep(640 * KB)),
                    MemOp::store(AccessPattern::streaming(24 * MB)),
                ],
            },
            Benchmark::Lps => ModelParams {
                grid_blocks: 88,
                warps_per_block: 2,
                iters_per_warp: 930,
                active_lanes: 32,
                alu_ops: 35,
                alu_latency: 4,
                mem_ops: vec![
                    MemOp::load(AccessPattern::streaming(32 * MB)),
                    MemOp::load(l2_resident_sweep(512 * KB)),
                    MemOp::store(AccessPattern::streaming(16 * MB)),
                ],
            },
            Benchmark::Ray => ModelParams {
                grid_blocks: 104,
                warps_per_block: 2,
                iters_per_warp: 840,
                active_lanes: 32,
                alu_ops: 46,
                alu_latency: 4,
                mem_ops: vec![
                    MemOp::load(AccessPattern::streaming(24 * MB)),
                    MemOp::load(l2_resident_sweep(640 * KB)),
                    MemOp::store(AccessPattern::streaming(12 * MB)),
                ],
            },

            // ---- class C: cache (L2) dominated -------------------------
            Benchmark::Bfs2 => ModelParams {
                grid_blocks: 128,
                warps_per_block: 2,
                iters_per_warp: 3400,
                active_lanes: 2,
                alu_ops: 4,
                alu_latency: 8,
                mem_ops: vec![MemOp::load(l2_resident_sweep(896 * KB))],
            },
            Benchmark::Spmv => ModelParams {
                grid_blocks: 60,
                warps_per_block: 4,
                iters_per_warp: 2760,
                active_lanes: 4,
                alu_ops: 13,
                alu_latency: 4,
                mem_ops: vec![MemOp::load(l2_resident_sweep(1280 * KB))],
            },

            // ---- class A: compute dominated ----------------------------
            Benchmark::Lud => ModelParams {
                grid_blocks: 12,
                warps_per_block: 1,
                iters_per_warp: 1360,
                active_lanes: 32,
                alu_ops: 30,
                alu_latency: 8,
                mem_ops: vec![MemOp::load(AccessPattern::tiled(96 * KB, 8 * KB))],
            },
            Benchmark::Jpeg => ModelParams {
                grid_blocks: 280,
                warps_per_block: 1,
                iters_per_warp: 310,
                active_lanes: 12,
                alu_ops: 150,
                alu_latency: 4,
                mem_ops: vec![
                    MemOp::load(l2_resident_sweep(640 * KB)),
                    MemOp::load(AccessPattern::streaming(24 * MB)),
                    MemOp::store(AccessPattern::streaming(12 * MB)),
                ],
            },
            Benchmark::Hs => ModelParams {
                grid_blocks: 320,
                warps_per_block: 1,
                iters_per_warp: 270,
                active_lanes: 32,
                alu_ops: 120,
                alu_latency: 8,
                mem_ops: vec![
                    MemOp::load(AccessPattern::streaming(32 * MB)),
                    MemOp::load(AccessPattern::streaming(32 * MB)),
                ],
            },
            Benchmark::Sad => ModelParams {
                grid_blocks: 280,
                warps_per_block: 1,
                iters_per_warp: 326,
                active_lanes: 16,
                alu_ops: 170,
                alu_latency: 4,
                mem_ops: vec![
                    MemOp::load(AccessPattern::streaming(16 * MB)),
                    MemOp::store(AccessPattern::streaming(8 * MB)),
                ],
            },
            Benchmark::Nn => ModelParams {
                grid_blocks: 200,
                warps_per_block: 1,
                iters_per_warp: 560,
                active_lanes: 4,
                alu_ops: 40,
                alu_latency: 12,
                mem_ops: vec![MemOp::load(l2_resident_sweep(256 * KB))],
            },
        }
    }

    /// Builds the simulator kernel for this benchmark at `scale`.
    pub fn kernel(&self, scale: Scale) -> KernelDesc {
        self.params().into_kernel(self.name(), scale)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of the thesis' Table 3.2 (reference values; our simulator is
/// calibrated toward the *shape* of this table, not its absolutes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperProfile {
    /// Benchmark.
    pub bench: Benchmark,
    /// DRAM memory bandwidth, GB/s.
    pub memory_bw: f64,
    /// L2→L1 bandwidth, GB/s.
    pub l2_l1_bw: f64,
    /// Thread-level IPC.
    pub ipc: f64,
    /// Memory-to-compute ratio.
    pub r: f64,
    /// Class letter the thesis assigns: 'M', 'X' (for MC), 'C' or 'A'.
    pub class: char,
}

/// Table 3.2 verbatim ('X' encodes class MC).
pub const PAPER_PROFILES: [PaperProfile; 14] = [
    PaperProfile { bench: Benchmark::Bfs2, memory_bw: 35.5, l2_l1_bw: 132.9, ipc: 19.4, r: 0.19, class: 'C' },
    PaperProfile { bench: Benchmark::Blk, memory_bw: 116.2, l2_l1_bw: 83.13, ipc: 577.1, r: 0.05, class: 'M' },
    PaperProfile { bench: Benchmark::Bp, memory_bw: 84.06, l2_l1_bw: 142.7, ipc: 808.3, r: 0.06, class: 'X' },
    PaperProfile { bench: Benchmark::Lud, memory_bw: 0.19, l2_l1_bw: 8.14, ipc: 40.1, r: 0.03, class: 'A' },
    PaperProfile { bench: Benchmark::Fft, memory_bw: 105.8, l2_l1_bw: 122.8, ipc: 405.7, r: 0.08, class: 'X' },
    PaperProfile { bench: Benchmark::Jpeg, memory_bw: 47.2, l2_l1_bw: 77.7, ipc: 386.4, r: 0.07, class: 'A' },
    PaperProfile { bench: Benchmark::Threeds, memory_bw: 81.4, l2_l1_bw: 102.75, ipc: 533.9, r: 0.11, class: 'X' },
    PaperProfile { bench: Benchmark::Hs, memory_bw: 43.93, l2_l1_bw: 97.3, ipc: 984.0, r: 0.01, class: 'A' },
    PaperProfile { bench: Benchmark::Lps, memory_bw: 80.6, l2_l1_bw: 115.4, ipc: 540.9, r: 0.03, class: 'X' },
    PaperProfile { bench: Benchmark::Ray, memory_bw: 59.7, l2_l1_bw: 69.1, ipc: 523.9, r: 0.1, class: 'X' },
    PaperProfile { bench: Benchmark::Gups, memory_bw: 108.75, l2_l1_bw: 97.1, ipc: 10.61, r: 0.1, class: 'M' },
    PaperProfile { bench: Benchmark::Spmv, memory_bw: 48.1, l2_l1_bw: 121.3, ipc: 208.7, r: 0.07, class: 'C' },
    PaperProfile { bench: Benchmark::Sad, memory_bw: 57.35, l2_l1_bw: 46.1, ipc: 781.9, r: 0.01, class: 'A' },
    PaperProfile { bench: Benchmark::Nn, memory_bw: 1.3, l2_l1_bw: 35.3, ipc: 56.8, r: 0.15, class: 'A' },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_covers_all_benchmarks() {
        for b in Benchmark::ALL {
            assert!(
                PAPER_PROFILES.iter().any(|p| p.bench == b),
                "{b} missing from PAPER_PROFILES"
            );
        }
    }

    #[test]
    fn paper_class_counts_match_chapter_4() {
        // The thesis' 14-app queue: 2 class M, 5 MC, 2 C, 5 A.
        let count = |c: char| PAPER_PROFILES.iter().filter(|p| p.class == c).count();
        assert_eq!(count('M'), 2);
        assert_eq!(count('X'), 5);
        assert_eq!(count('C'), 2);
        assert_eq!(count('A'), 5);
    }

    #[test]
    fn from_name_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(Benchmark::from_name(&b.name().to_lowercase()), Some(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Benchmark::Threeds.to_string(), "3DS");
    }
}
