//! Exhaustive integer enumeration — an exact (exponential) oracle used to
//! cross-validate the branch & bound solver on small instances.
//!
//! The search space must be finite: every variable needs a derivable upper
//! bound. [`solve_by_enumeration`] infers per-variable bounds from the
//! constraint system (any `≤`/`=` row with all-nonnegative coefficients
//! bounds each variable with a positive coefficient); callers may also
//! supply explicit bounds via [`solve_bounded`].

use crate::problem::{Problem, Relation, Sense};
use crate::{Solution, SolveError};

/// Maximum number of lattice points the enumerator will visit before
/// giving up (protects tests against accidental combinatorial blow-up).
pub const MAX_POINTS: u64 = 50_000_000;

/// Derives a finite upper bound for every variable, or `None` for a
/// variable that no constraint bounds.
pub fn infer_bounds(problem: &Problem) -> Vec<Option<u64>> {
    let n = problem.num_vars();
    let mut bounds: Vec<Option<u64>> = vec![None; n];
    for c in problem.constraints() {
        let binding = matches!(c.rel, Relation::Le | Relation::Eq);
        if !binding || c.rhs < 0.0 {
            continue;
        }
        if c.coeffs.iter().all(|&a| a >= 0.0) {
            for (i, &a) in c.coeffs.iter().enumerate() {
                if a > 0.0 {
                    let ub = (c.rhs / a).floor().max(0.0) as u64;
                    bounds[i] = Some(bounds[i].map_or(ub, |b| b.min(ub)));
                }
            }
        }
    }
    bounds
}

/// Solves an all-integer problem by exhaustive search, inferring bounds
/// from the constraints.
///
/// # Errors
///
/// * [`SolveError::Malformed`] if any variable is continuous or unbounded,
///   or if the search space exceeds [`MAX_POINTS`].
/// * [`SolveError::Infeasible`] if no lattice point satisfies the
///   constraints.
///
/// # Example
///
/// ```
/// use gcs_milp::{Problem, Relation};
/// use gcs_milp::enumerate::solve_by_enumeration;
///
/// # fn main() -> Result<(), gcs_milp::SolveError> {
/// let mut p = Problem::maximize(vec![2.0, 3.0]);
/// p.add_constraint(vec![1.0, 1.0], Relation::Le, 3.0);
/// p.set_all_integer(true);
/// let sol = solve_by_enumeration(&p)?;
/// assert_eq!(sol.rounded(), vec![0, 3]);
/// # Ok(())
/// # }
/// ```
pub fn solve_by_enumeration(problem: &Problem) -> Result<Solution, SolveError> {
    let bounds = infer_bounds(problem);
    let concrete: Result<Vec<u64>, SolveError> = bounds
        .iter()
        .enumerate()
        .map(|(i, b)| {
            b.ok_or_else(|| {
                SolveError::Malformed(format!("variable {i} has no inferable upper bound"))
            })
        })
        .collect();
    solve_bounded(problem, &concrete?)
}

/// Solves an all-integer problem by exhaustive search over
/// `0..=bounds[i]` for each variable.
///
/// # Errors
///
/// See [`solve_by_enumeration`].
pub fn solve_bounded(problem: &Problem, bounds: &[u64]) -> Result<Solution, SolveError> {
    if bounds.len() != problem.num_vars() {
        return Err(SolveError::Malformed(format!(
            "bounds arity {} does not match variable count {}",
            bounds.len(),
            problem.num_vars()
        )));
    }
    if (0..problem.num_vars()).any(|i| !problem.is_integer(i)) {
        return Err(SolveError::Malformed(
            "enumeration requires all variables integral".into(),
        ));
    }
    let mut space: u64 = 1;
    for &b in bounds {
        space = space.saturating_mul(b + 1);
        if space > MAX_POINTS {
            return Err(SolveError::Malformed(format!(
                "search space exceeds {MAX_POINTS} points"
            )));
        }
    }

    let maximizing = problem.sense() == Sense::Maximize;
    let mut best: Option<(Vec<f64>, f64)> = None;
    let mut point = vec![0.0f64; problem.num_vars()];
    visit(problem, bounds, 0, &mut point, maximizing, &mut best);

    match best {
        Some((values, objective)) => Ok(Solution {
            values,
            objective,
            stats: Default::default(),
            exact: true,
        }),
        None => Err(SolveError::Infeasible),
    }
}

fn visit(
    problem: &Problem,
    bounds: &[u64],
    depth: usize,
    point: &mut Vec<f64>,
    maximizing: bool,
    best: &mut Option<(Vec<f64>, f64)>,
) {
    if depth == bounds.len() {
        if problem.is_feasible(point) {
            let obj = problem.objective_value(point);
            let better = match best {
                None => true,
                Some((_, b)) => {
                    if maximizing {
                        obj > *b + 1e-12
                    } else {
                        obj < *b - 1e-12
                    }
                }
            };
            if better {
                *best = Some((point.clone(), obj));
            }
        }
        return;
    }
    for v in 0..=bounds[depth] {
        point[depth] = v as f64;
        visit(problem, bounds, depth + 1, point, maximizing, best);
    }
    point[depth] = 0.0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation};

    #[test]
    fn bounds_inferred_from_le_rows() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_constraint(vec![2.0, 1.0], Relation::Le, 10.0);
        let b = infer_bounds(&p);
        assert_eq!(b, vec![Some(5), Some(10)]);
    }

    #[test]
    fn unbounded_variable_detected() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_constraint(vec![1.0, 0.0], Relation::Le, 3.0);
        p.set_all_integer(true);
        assert!(matches!(
            solve_by_enumeration(&p),
            Err(SolveError::Malformed(_))
        ));
    }

    #[test]
    fn agrees_with_branch_and_bound() {
        let mut p = Problem::maximize(vec![10.0, 6.0, 4.0]);
        p.add_constraint(vec![1.0, 1.0, 1.0], Relation::Le, 20.0);
        p.add_constraint(vec![10.0, 4.0, 5.0], Relation::Le, 60.0);
        p.set_all_integer(true);
        let bb = p.solve().unwrap();
        let en = solve_by_enumeration(&p).unwrap();
        assert!((bb.objective - en.objective).abs() < 1e-6);
    }

    #[test]
    fn equality_rows_bound_too() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_constraint(vec![1.0, 1.0], Relation::Eq, 4.0);
        p.set_all_integer(true);
        let sol = solve_by_enumeration(&p).unwrap();
        assert!((sol.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_lattice() {
        let mut p = Problem::maximize(vec![1.0]);
        p.add_constraint(vec![2.0], Relation::Eq, 3.0);
        p.set_all_integer(true);
        assert_eq!(
            solve_by_enumeration(&p).unwrap_err(),
            SolveError::Infeasible
        );
    }

    #[test]
    fn continuous_variable_rejected() {
        let mut p = Problem::maximize(vec![1.0]);
        p.add_constraint(vec![1.0], Relation::Le, 2.0);
        assert!(matches!(
            solve_by_enumeration(&p),
            Err(SolveError::Malformed(_))
        ));
    }

    #[test]
    fn minimization_enumeration() {
        let mut p = Problem::minimize(vec![1.0, 2.0]);
        p.add_constraint(vec![1.0, 1.0], Relation::Le, 5.0);
        p.add_constraint(vec![1.0, 1.0], Relation::Ge, 2.0);
        p.set_all_integer(true);
        let sol = solve_by_enumeration(&p).unwrap();
        // cheapest way to reach sum >= 2 is x = 2, y = 0 -> cost 2
        assert!((sol.objective - 2.0).abs() < 1e-9);
        assert_eq!(sol.rounded(), vec![2, 0]);
    }
}
