//! Parser for the subset of the CPLEX LP format that
//! [`crate::export::to_lp_string`] emits — objective, linear
//! constraints, `General` integrality section.
//!
//! Exists primarily so formulations can be round-tripped in tests and
//! loaded back from files captured during debugging sessions.

use crate::problem::{Problem, Relation, Sense};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from [`parse_lp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLpError {
    /// 1-based line number where parsing failed, when known.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseLpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lp parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseLpError {}

fn err(line: usize, message: impl Into<String>) -> ParseLpError {
    ParseLpError {
        line,
        message: message.into(),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Objective,
    Constraints,
    General,
    End,
}

/// Parses an LP document produced by [`crate::export::to_lp_string`]
/// (variables named `x<idx>`).
///
/// # Errors
///
/// [`ParseLpError`] describing the offending line.
///
/// # Example
///
/// ```
/// use gcs_milp::parse::parse_lp;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = parse_lp("Maximize\n obj: 2 x0 + 3 x1\nSubject To\n c0: 1 x0 + 1 x1 <= 4\nEnd\n")?;
/// let sol = p.solve()?;
/// assert!((sol.objective - 12.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn parse_lp(text: &str) -> Result<Problem, ParseLpError> {
    let mut sense = None;
    let mut section = None;
    let mut objective: BTreeMap<usize, f64> = BTreeMap::new();
    let mut constraints: Vec<(BTreeMap<usize, f64>, Relation, f64)> = Vec::new();
    let mut integers: Vec<usize> = Vec::new();

    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        match line.to_ascii_lowercase().as_str() {
            "maximize" => {
                sense = Some(Sense::Maximize);
                section = Some(Section::Objective);
                continue;
            }
            "minimize" => {
                sense = Some(Sense::Minimize);
                section = Some(Section::Objective);
                continue;
            }
            "subject to" | "st" | "s.t." => {
                section = Some(Section::Constraints);
                continue;
            }
            "general" | "generals" | "integer" => {
                section = Some(Section::General);
                continue;
            }
            "end" => {
                section = Some(Section::End);
                continue;
            }
            _ => {}
        }
        match section {
            Some(Section::Objective) => {
                let body = strip_label(line);
                objective = parse_linear(body, lineno)?;
            }
            Some(Section::Constraints) => {
                let body = strip_label(line);
                let (rel_pos, rel, rel_len) = find_relation(body)
                    .ok_or_else(|| err(lineno, "constraint has no <=, = or >="))?;
                let lhs = parse_linear(&body[..rel_pos], lineno)?;
                let rhs: f64 = body[rel_pos + rel_len..]
                    .trim()
                    .parse()
                    .map_err(|_| err(lineno, "bad right-hand side"))?;
                constraints.push((lhs, rel, rhs));
            }
            Some(Section::General) => {
                for tok in line.split_whitespace() {
                    integers.push(parse_var(tok, lineno)?);
                }
            }
            Some(Section::End) => {
                return Err(err(lineno, "content after End"));
            }
            None => return Err(err(lineno, "expected Maximize or Minimize header")),
        }
    }

    let sense = sense.ok_or_else(|| err(1, "missing Maximize/Minimize header"))?;
    let num_vars = objective
        .keys()
        .chain(constraints.iter().flat_map(|(l, _, _)| l.keys()))
        .chain(integers.iter())
        .max()
        .map_or(0, |&m| m + 1);
    if num_vars == 0 {
        return Err(err(1, "no variables found"));
    }

    let dense = |m: &BTreeMap<usize, f64>| -> Vec<f64> {
        let mut v = vec![0.0; num_vars];
        for (&i, &c) in m {
            v[i] = c;
        }
        v
    };
    let mut p = match sense {
        Sense::Maximize => Problem::maximize(dense(&objective)),
        Sense::Minimize => Problem::minimize(dense(&objective)),
    };
    for (lhs, rel, rhs) in &constraints {
        p.add_constraint(dense(lhs), *rel, *rhs);
    }
    for &i in &integers {
        p.set_integer(i, true);
    }
    Ok(p)
}

/// Strips a leading `name:` label if present.
fn strip_label(line: &str) -> &str {
    match line.find(':') {
        Some(pos) => line[pos + 1..].trim(),
        None => line,
    }
}

fn find_relation(body: &str) -> Option<(usize, Relation, usize)> {
    if let Some(p) = body.find("<=") {
        return Some((p, Relation::Le, 2));
    }
    if let Some(p) = body.find(">=") {
        return Some((p, Relation::Ge, 2));
    }
    body.find('=').map(|p| (p, Relation::Eq, 1))
}

fn parse_var(tok: &str, lineno: usize) -> Result<usize, ParseLpError> {
    tok.strip_prefix('x')
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err(lineno, format!("bad variable name `{tok}`")))
}

/// Parses `a x0 + b x1 - c x2 ...` into a sparse coefficient map.
fn parse_linear(body: &str, lineno: usize) -> Result<BTreeMap<usize, f64>, ParseLpError> {
    let mut out = BTreeMap::new();
    let mut sign = 1.0;
    let mut pending_coeff: Option<f64> = None;
    for tok in body.split_whitespace() {
        match tok {
            "+" => sign = 1.0,
            "-" => sign = -1.0,
            _ if tok.starts_with('x') => {
                let var = parse_var(tok, lineno)?;
                let coeff = pending_coeff.take().unwrap_or(1.0) * sign;
                *out.entry(var).or_insert(0.0) += coeff;
                sign = 1.0;
            }
            _ => {
                let c: f64 = tok
                    .parse()
                    .map_err(|_| err(lineno, format!("bad coefficient `{tok}`")))?;
                if pending_coeff.replace(c).is_some() {
                    return Err(err(lineno, "two consecutive coefficients"));
                }
            }
        }
    }
    if pending_coeff.is_some() {
        return Err(err(lineno, "trailing coefficient without a variable"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::to_lp_string;
    use crate::Relation as R;

    #[test]
    fn round_trip_preserves_solutions() {
        let mut p = Problem::maximize(vec![3.0, 2.0, 0.5]);
        p.add_constraint(vec![1.0, 1.0, 0.0], R::Le, 4.0);
        p.add_constraint(vec![1.0, 3.0, -1.0], R::Ge, 1.0);
        p.add_constraint(vec![0.0, 1.0, 1.0], R::Eq, 2.0);
        p.set_integer(1, true);
        let text = to_lp_string(&p);
        let q = parse_lp(&text).expect("parses");
        let a = p.solve().expect("original solves");
        let b = q.solve().expect("round-tripped solves");
        assert!((a.objective - b.objective).abs() < 1e-9);
    }

    #[test]
    fn parses_hand_written_document() {
        let p = parse_lp(
            "Minimize\n obj: 1 x0 + 2 x1\nSubject To\n c0: 1 x0 + 1 x1 >= 3\nGeneral\n x0 x1\nEnd\n",
        )
        .expect("parses");
        let sol = p.solve().expect("solves");
        assert!((sol.objective - 3.0).abs() < 1e-9);
        assert_eq!(sol.rounded(), vec![3, 0]);
    }

    #[test]
    fn missing_header_rejected() {
        assert!(parse_lp("Subject To\n c0: 1 x0 <= 1\nEnd\n").is_err());
    }

    #[test]
    fn bad_tokens_reported_with_line() {
        let e = parse_lp("Maximize\n obj: zz x0\nEnd\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn implicit_unit_coefficients() {
        let p = parse_lp("Maximize\n obj: x0 + x1\nSubject To\n c0: x0 + x1 <= 2\nEnd\n")
            .expect("parses");
        let sol = p.solve().expect("solves");
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn content_after_end_rejected() {
        assert!(parse_lp("Maximize\n obj: x0\nEnd\n junk\n").is_err());
    }
}
