//! # gcs-milp — a self-contained (mixed-)integer linear programming solver
//!
//! This crate implements, from scratch, the optimization machinery the paper
//! relies on for its contention-minimization step (§3.2.3): a dense
//! **two-phase primal simplex** solver for linear programs and a
//! **branch & bound** driver for (mixed-)integer programs.
//!
//! The co-scheduling ILPs produced by the paper are tiny — at most
//! `C(NT + NC - 1, NC)` variables (10 for two concurrent applications,
//! 20 for three) and `NT + 1` constraints — so a dense tableau is the right
//! representation: simple, cache-friendly and numerically transparent.
//!
//! Two independent solution paths are provided so each can validate the
//! other in tests:
//!
//! * [`Problem::solve`] — LP relaxation via simplex, integrality via
//!   branch & bound.
//! * [`enumerate::solve_by_enumeration`] — exhaustive search over the
//!   (bounded) integer lattice, exact but exponential; used as an oracle.
//!
//! ## Example
//!
//! Maximize `3x + 2y` subject to `x + y ≤ 4`, `x + 3y ≤ 6`, integer `x, y`:
//!
//! ```
//! use gcs_milp::{Problem, Relation};
//!
//! # fn main() -> Result<(), gcs_milp::SolveError> {
//! let mut p = Problem::maximize(vec![3.0, 2.0]);
//! p.add_constraint(vec![1.0, 1.0], Relation::Le, 4.0);
//! p.add_constraint(vec![1.0, 3.0], Relation::Le, 6.0);
//! p.set_all_integer(true);
//! let sol = p.solve()?;
//! assert!((sol.objective - 12.0).abs() < 1e-6); // x = 4, y = 0
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;
pub mod export;
pub mod parse;
mod problem;
mod simplex;
mod branch;

pub use problem::{Problem, Constraint, Relation, Sense};
pub use simplex::{LpSolution, LpStatus};
pub use branch::BranchStats;

use std::error::Error;
use std::fmt;

/// Numeric tolerance used throughout the solver for feasibility and
/// integrality tests.
pub const EPS: f64 = 1e-9;

/// Tolerance for deciding that a relaxation value is integral.
pub const INT_EPS: f64 = 1e-6;

/// An optimal solution to a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Optimal variable assignment, one entry per decision variable.
    pub values: Vec<f64>,
    /// Objective value at `values`, in the problem's own sense
    /// (i.e. already negated back for minimization problems).
    pub objective: f64,
    /// Branch & bound statistics (all zeros for pure LPs).
    pub stats: BranchStats,
    /// Whether optimality was proven. `false` when a simplex iteration
    /// budget ran out: `values` is then feasible but possibly
    /// suboptimal, and callers should treat bounds derived from it
    /// conservatively.
    pub exact: bool,
}

impl Solution {
    /// Returns the variable assignment rounded to the nearest integers.
    ///
    /// Useful after a mixed-integer solve, where integral variables are
    /// only integral up to [`INT_EPS`].
    pub fn rounded(&self) -> Vec<i64> {
        self.values.iter().map(|v| v.round() as i64).collect()
    }
}

/// Errors produced by [`Problem::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The problem definition is malformed (e.g. a constraint row whose
    /// length disagrees with the number of variables). The payload
    /// describes the defect.
    Malformed(String),
    /// Branch & bound exceeded its node budget without proving optimality.
    NodeLimit,
    /// The simplex iteration budget ran out before even a feasible point
    /// was found.
    BudgetExhausted,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "problem is infeasible"),
            SolveError::Unbounded => write!(f, "objective is unbounded"),
            SolveError::Malformed(why) => write!(f, "malformed problem: {why}"),
            SolveError::NodeLimit => write!(f, "branch and bound node limit exceeded"),
            SolveError::BudgetExhausted => {
                write!(f, "simplex iteration budget exhausted")
            }
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_rounding() {
        let sol = Solution {
            values: vec![1.9999999, 0.0000001, 3.0],
            objective: 5.0,
            stats: BranchStats::default(),
            exact: true,
        };
        assert_eq!(sol.rounded(), vec![2, 0, 3]);
    }

    #[test]
    fn error_display_is_lowercase() {
        assert_eq!(SolveError::Infeasible.to_string(), "problem is infeasible");
        assert_eq!(SolveError::Unbounded.to_string(), "objective is unbounded");
    }
}
