//! Dense two-phase primal simplex.
//!
//! The solver works on the standard form
//!
//! ```text
//! maximize  c · x
//! s.t.      A x {≤,=,≥} b,   x ≥ 0
//! ```
//!
//! Rows are normalized to non-negative right-hand sides, then slack,
//! surplus and artificial columns are appended. Phase 1 drives the
//! artificials to zero (or proves infeasibility); phase 2 optimizes the
//! real objective. Pivoting uses Dantzig's rule with a Bland's-rule
//! fallback after a fixed number of degenerate iterations, which
//! guarantees termination on cycling-prone instances.

use crate::problem::{Constraint, Relation};
use crate::EPS;

/// Status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// The iteration budget ran out before optimality was proven. When
    /// `values` is non-empty the point is feasible but possibly
    /// suboptimal; when empty, not even feasibility was established.
    BudgetExhausted,
}

/// Raw result of the simplex routine.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Outcome of the solve.
    pub status: LpStatus,
    /// Values of the original decision variables (empty unless a
    /// feasible point was reached).
    pub values: Vec<f64>,
    /// Objective value (0 unless a feasible point was reached).
    pub objective: f64,
}

impl LpSolution {
    fn infeasible() -> Self {
        LpSolution {
            status: LpStatus::Infeasible,
            values: Vec::new(),
            objective: 0.0,
        }
    }

    fn unbounded() -> Self {
        LpSolution {
            status: LpStatus::Unbounded,
            values: Vec::new(),
            objective: 0.0,
        }
    }

    fn budget_exhausted() -> Self {
        LpSolution {
            status: LpStatus::BudgetExhausted,
            values: Vec::new(),
            objective: 0.0,
        }
    }
}

/// Dense simplex tableau with explicit basis bookkeeping.
struct Tableau {
    /// `m x (total_cols + 1)` coefficient matrix; last column is the RHS.
    rows: Vec<Vec<f64>>,
    /// Objective row (reduced costs), length `total_cols + 1`.
    obj: Vec<f64>,
    /// Basis: `basis[r]` is the column index basic in row `r`.
    basis: Vec<usize>,
    /// Number of structural (original) variables.
    n: usize,
    /// Total number of columns excluding RHS.
    total: usize,
    /// Column index where artificial variables begin.
    art_start: usize,
}

/// Maximizes `objective · x` subject to `constraints` and `x ≥ 0`.
pub(crate) fn solve(objective: &[f64], constraints: &[Constraint]) -> LpSolution {
    solve_budgeted(objective, constraints, None)
}

/// [`solve`] with an explicit per-phase pivot budget (`None` = the
/// size-derived default). Exercised directly by tests; production
/// callers rely on the default, which no well-formed co-scheduling
/// problem comes near.
pub(crate) fn solve_budgeted(
    objective: &[f64],
    constraints: &[Constraint],
    budget: Option<usize>,
) -> LpSolution {
    let n = objective.len();
    let m = constraints.len();

    // Count auxiliary columns. Every row gets either a slack (Le), a
    // surplus+artificial (Ge) or an artificial (Eq) after RHS
    // normalization.
    let mut num_slack = 0usize;
    let mut num_art = 0usize;
    let mut norm: Vec<(Vec<f64>, Relation, f64)> = Vec::with_capacity(m);
    for c in constraints {
        let mut coeffs = c.coeffs.clone();
        let mut rel = c.rel;
        let mut rhs = c.rhs;
        if rhs < 0.0 {
            for v in &mut coeffs {
                *v = -*v;
            }
            rhs = -rhs;
            rel = match rel {
                Relation::Le => Relation::Ge,
                Relation::Ge => Relation::Le,
                Relation::Eq => Relation::Eq,
            };
        }
        match rel {
            Relation::Le => num_slack += 1,
            Relation::Ge => {
                num_slack += 1;
                num_art += 1;
            }
            Relation::Eq => num_art += 1,
        }
        norm.push((coeffs, rel, rhs));
    }

    let art_start = n + num_slack;
    let total = art_start + num_art;

    let mut rows = vec![vec![0.0; total + 1]; m];
    let mut basis = vec![usize::MAX; m];
    let mut slack_idx = n;
    let mut art_idx = art_start;

    for (r, (coeffs, rel, rhs)) in norm.iter().enumerate() {
        rows[r][..n].copy_from_slice(coeffs);
        rows[r][total] = *rhs;
        match rel {
            Relation::Le => {
                rows[r][slack_idx] = 1.0;
                basis[r] = slack_idx;
                slack_idx += 1;
            }
            Relation::Ge => {
                rows[r][slack_idx] = -1.0; // surplus
                slack_idx += 1;
                rows[r][art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
            Relation::Eq => {
                rows[r][art_idx] = 1.0;
                basis[r] = art_idx;
                art_idx += 1;
            }
        }
    }

    let mut t = Tableau {
        rows,
        obj: vec![0.0; total + 1],
        basis,
        n,
        total,
        art_start,
    };

    // Phase 1: maximize -(sum of artificials), i.e. reduced costs start as
    // the negated sum of rows that have a basic artificial.
    if num_art > 0 {
        for col in art_start..total {
            t.obj[col] = -1.0;
        }
        // Price out basic artificials.
        for r in 0..m {
            if t.basis[r] >= art_start {
                let row = t.rows[r].clone();
                for (o, v) in t.obj.iter_mut().zip(row.iter()) {
                    *o += *v;
                }
            }
        }
        match t.run(budget) {
            PivotOutcome::Optimal => {}
            PivotOutcome::Unbounded => {
                // Phase-1 objective is bounded above by 0; reaching here
                // indicates numerical trouble. Treat as infeasible.
                return LpSolution::infeasible();
            }
            PivotOutcome::IterLimit => {
                // Feasibility was never established — there is no point
                // to report.
                return LpSolution::budget_exhausted();
            }
        }
        // The objective-row RHS cell tracks -(phase-1 objective), i.e. the
        // current sum of artificial variables. Feasible iff it reached zero.
        if t.obj[t.total] > 1e-7 {
            return LpSolution::infeasible();
        }
        // Pivot any artificial still basic (at zero) out of the basis to
        // keep phase 2 clean; if its row is all zeros over structural and
        // slack columns, the row is redundant and can stay.
        for r in 0..m {
            if t.basis[r] >= t.art_start {
                let pivot_col = (0..t.art_start).find(|&c| t.rows[r][c].abs() > EPS);
                if let Some(c) = pivot_col {
                    t.pivot(r, c);
                }
            }
        }
    }

    // Phase 2: install the real objective, expressed in terms of the
    // current basis. Artificial columns are frozen out by making their
    // reduced costs prohibitively negative.
    let mut obj = vec![0.0; total + 1];
    obj[..n].copy_from_slice(objective);
    // Price out the basic variables: reduced_cost = c - c_B * B^-1 A.
    // The tableau rows already hold B^-1 A, so subtract c_B[r] * row_r.
    let mut z = vec![0.0; total + 1];
    for r in 0..m {
        let b = t.basis[r];
        let cb = if b < n { objective[b] } else { 0.0 };
        if cb != 0.0 {
            for (zv, rv) in z.iter_mut().zip(t.rows[r].iter()) {
                *zv += cb * rv;
            }
        }
    }
    // Reduced costs c - c_B B⁻¹A; the RHS cell becomes -(objective value).
    for i in 0..=total {
        obj[i] -= z[i];
    }
    t.obj = obj;
    // Never re-enter artificial columns.
    for col in t.art_start..t.total {
        t.obj[col] = f64::NEG_INFINITY;
    }

    let status = match t.run(budget) {
        PivotOutcome::Optimal => LpStatus::Optimal,
        PivotOutcome::Unbounded => return LpSolution::unbounded(),
        // Every phase-2 iterate is feasible, so the current basic point
        // can still be reported — just not as optimal.
        PivotOutcome::IterLimit => LpStatus::BudgetExhausted,
    };

    let mut values = vec![0.0; n];
    for r in 0..m {
        if t.basis[r] < n {
            values[t.basis[r]] = t.rows[r][t.total];
        }
    }
    // Clamp tiny negative noise.
    for v in &mut values {
        if *v < 0.0 && *v > -1e-7 {
            *v = 0.0;
        }
    }
    let objective_value: f64 = objective.iter().zip(&values).map(|(c, x)| c * x).sum();
    LpSolution {
        status,
        values,
        objective: objective_value,
    }
}

enum PivotOutcome {
    Optimal,
    Unbounded,
    /// The pivot budget ran out before optimality was proven.
    IterLimit,
}

impl Tableau {
    /// Runs simplex iterations until optimality, unboundedness, or the
    /// pivot budget (`None` = size-derived default) runs out.
    fn run(&mut self, budget: Option<usize>) -> PivotOutcome {
        let mut degenerate_streak = 0usize;
        // Generous safety bound: the number of bases is finite and Bland's
        // rule prevents cycling, but cap iterations defensively.
        let max_iters = budget
            .unwrap_or(50_000 + 200 * (self.total + 1) * (self.rows.len() + 1));
        for _ in 0..max_iters {
            let use_bland = degenerate_streak > 64;
            let Some(col) = self.entering_column(use_bland) else {
                return PivotOutcome::Optimal;
            };
            let Some(row) = self.leaving_row(col, use_bland) else {
                return PivotOutcome::Unbounded;
            };
            let before_rhs = self.obj[self.total];
            self.pivot(row, col);
            if (self.obj[self.total] - before_rhs).abs() <= EPS {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
        }
        // Iteration budget exceeded: say so. Bland's rule makes this
        // unreachable with the default budget, but mislabeling the
        // current point "optimal" would silently corrupt every caller
        // that trusts the status.
        PivotOutcome::IterLimit
    }

    /// Chooses the entering column: most positive reduced cost (Dantzig),
    /// or smallest index with positive reduced cost (Bland).
    fn entering_column(&self, bland: bool) -> Option<usize> {
        if bland {
            (0..self.total).find(|&c| self.obj[c] > EPS)
        } else {
            let mut best = None;
            let mut best_val = EPS;
            for c in 0..self.total {
                if self.obj[c] > best_val {
                    best_val = self.obj[c];
                    best = Some(c);
                }
            }
            best
        }
    }

    /// Minimum ratio test; Bland tie-break on basis index when requested.
    fn leaving_row(&self, col: usize, bland: bool) -> Option<usize> {
        let rhs_col = self.total;
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.rows.len() {
            let a = self.rows[r][col];
            if a > EPS {
                let ratio = self.rows[r][rhs_col] / a;
                match best {
                    None => best = Some((r, ratio)),
                    Some((br, bratio)) => {
                        let better = ratio < bratio - EPS
                            || ((ratio - bratio).abs() <= EPS
                                && if bland {
                                    self.basis[r] < self.basis[br]
                                } else {
                                    r < br
                                });
                        if better {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(r, _)| r)
    }

    /// Gauss-Jordan pivot on `(row, col)`.
    fn pivot(&mut self, row: usize, col: usize) {
        let p = self.rows[row][col];
        debug_assert!(p.abs() > EPS, "pivot on a (near-)zero element");
        let inv = 1.0 / p;
        for v in &mut self.rows[row] {
            *v *= inv;
        }
        let pivot_row = self.rows[row].clone();
        for (r, other) in self.rows.iter_mut().enumerate() {
            if r != row {
                let factor = other[col];
                if factor != 0.0 {
                    for (o, pv) in other.iter_mut().zip(pivot_row.iter()) {
                        *o -= factor * pv;
                    }
                    other[col] = 0.0; // kill numerical residue exactly
                }
            }
        }
        let factor = self.obj[col];
        if factor != 0.0 && factor.is_finite() {
            for (o, pv) in self.obj.iter_mut().zip(pivot_row.iter()) {
                if o.is_finite() {
                    *o -= factor * pv;
                }
            }
            self.obj[col] = 0.0;
        }
        self.basis[row] = col;
        let _ = self.n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Constraint, Relation};

    fn c(coeffs: &[f64], rel: Relation, rhs: f64) -> Constraint {
        Constraint::new(coeffs.to_vec(), rel, rhs)
    }

    #[test]
    fn textbook_max() {
        // max 3x+5y; x<=4; 2y<=12; 3x+2y<=18 -> 36 at (2,6)
        let sol = solve(
            &[3.0, 5.0],
            &[
                c(&[1.0, 0.0], Relation::Le, 4.0),
                c(&[0.0, 2.0], Relation::Le, 12.0),
                c(&[3.0, 2.0], Relation::Le, 18.0),
            ],
        );
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 36.0).abs() < 1e-6);
    }

    #[test]
    fn ge_constraints_need_phase1() {
        // max -x - y (i.e. min x+y) s.t. x + 2y >= 4, 3x + y >= 6
        // optimum of min at intersection: x = 8/5, y = 6/5 -> x+y = 14/5
        let sol = solve(
            &[-1.0, -1.0],
            &[
                c(&[1.0, 2.0], Relation::Ge, 4.0),
                c(&[3.0, 1.0], Relation::Ge, 6.0),
            ],
        );
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 14.0 / 5.0).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn negative_rhs_normalized() {
        // x <= 5 written as -x >= -5.
        let sol = solve(&[1.0], &[c(&[-1.0], Relation::Ge, -5.0)]);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_system() {
        let sol = solve(
            &[1.0],
            &[
                c(&[1.0], Relation::Le, 1.0),
                c(&[1.0], Relation::Ge, 3.0),
            ],
        );
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_direction() {
        let sol = solve(&[1.0], &[c(&[0.0], Relation::Le, 1.0)]);
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn equality_only_system() {
        // max x + y s.t. x + y = 3, x - y = 1 -> (2,1), obj 3
        let sol = solve(
            &[1.0, 1.0],
            &[
                c(&[1.0, 1.0], Relation::Eq, 3.0),
                c(&[1.0, -1.0], Relation::Eq, 1.0),
            ],
        );
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 3.0).abs() < 1e-6);
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 twice: redundant but consistent.
        let sol = solve(
            &[1.0, 0.0],
            &[
                c(&[1.0, 1.0], Relation::Eq, 2.0),
                c(&[1.0, 1.0], Relation::Eq, 2.0),
            ],
        );
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn zero_objective() {
        let sol = solve(&[0.0, 0.0], &[c(&[1.0, 1.0], Relation::Le, 1.0)]);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn phase2_budget_exhaustion_reports_feasible_point_not_optimal() {
        // One pivot is not enough to reach the optimum of the textbook
        // problem; the solver must say BudgetExhausted (not Optimal) and
        // still hand back the feasible point it stopped at.
        let constraints = [
            c(&[1.0, 0.0], Relation::Le, 4.0),
            c(&[0.0, 2.0], Relation::Le, 12.0),
            c(&[3.0, 2.0], Relation::Le, 18.0),
        ];
        let sol = solve_budgeted(&[3.0, 5.0], &constraints, Some(1));
        assert_eq!(sol.status, LpStatus::BudgetExhausted);
        assert!(!sol.values.is_empty());
        assert!(sol.objective < 36.0 - 1e-6, "{}", sol.objective);
        for con in &constraints {
            assert!(con.is_satisfied(&sol.values), "point must stay feasible");
        }
        // The untouched budget still reaches the true optimum.
        let full = solve(&[3.0, 5.0], &constraints);
        assert_eq!(full.status, LpStatus::Optimal);
    }

    #[test]
    fn phase1_budget_exhaustion_reports_no_point() {
        // Zero pivots cannot drive the artificials out, so feasibility
        // is never established and no point may be reported.
        let sol = solve_budgeted(
            &[-1.0, -1.0],
            &[
                c(&[1.0, 2.0], Relation::Ge, 4.0),
                c(&[3.0, 1.0], Relation::Ge, 6.0),
            ],
            Some(0),
        );
        assert_eq!(sol.status, LpStatus::BudgetExhausted);
        assert!(sol.values.is_empty());
    }
}
