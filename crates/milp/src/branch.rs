//! Branch & bound over the LP relaxation for mixed-integer programs.
//!
//! Classic most-fractional branching with depth-first traversal and
//! incumbent-based pruning. Each node is the parent problem plus one
//! bound cut (`x_i ≤ ⌊v⌋` or `x_i ≥ ⌈v⌉`), so the per-node memory cost is
//! a full (small) problem clone — entirely acceptable at the problem sizes
//! the co-scheduler produces (≤ 20 variables).

use crate::problem::{Problem, Relation, Sense};
use crate::{Solution, SolveError, INT_EPS};

/// Counters describing the branch & bound search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BranchStats {
    /// LP relaxations solved (nodes expanded).
    pub nodes: usize,
    /// Nodes pruned by the incumbent bound.
    pub pruned_by_bound: usize,
    /// Nodes whose relaxation was infeasible.
    pub pruned_infeasible: usize,
}

/// Solves a problem with at least one integral variable.
pub(crate) fn solve(problem: &Problem) -> Result<Solution, SolveError> {
    // Work internally in maximization form; flip back at the end.
    let root = problem.as_max_problem();
    let minimizing = problem.sense == Sense::Minimize;

    let mut stats = BranchStats::default();
    let mut incumbent: Option<Solution> = None;
    let mut stack: Vec<Problem> = vec![root];
    let mut root_unbounded = false;
    let mut first_node = true;

    while let Some(node) = stack.pop() {
        if stats.nodes >= problem.node_limit {
            return Err(SolveError::NodeLimit);
        }
        stats.nodes += 1;
        let relaxed = match node.solve_relaxation() {
            Ok(sol) => sol,
            Err(SolveError::Infeasible) => {
                stats.pruned_infeasible += 1;
                first_node = false;
                continue;
            }
            Err(SolveError::Unbounded) => {
                if first_node {
                    root_unbounded = true;
                    break;
                }
                // An unbounded child with a bounded integer optimum is
                // possible only for pathological mixed problems; treat the
                // direction as unusable and skip.
                continue;
            }
            Err(e) => return Err(e),
        };
        first_node = false;

        // Bound: relaxation optimum is an upper bound on any integer
        // solution in this subtree — but only when the relaxation was
        // solved to optimality. An inexact (budget-exhausted) value may
        // *under*state the true bound, so pruning on it could discard
        // the optimum; explore such subtrees instead.
        if relaxed.exact {
            if let Some(best) = &incumbent {
                if relaxed.objective <= best_objective_max(best, minimizing) + INT_EPS {
                    stats.pruned_by_bound += 1;
                    continue;
                }
            }
        }

        // Find the most fractional integral variable.
        let mut branch_var: Option<(usize, f64, f64)> = None; // (idx, value, frac-dist)
        for (i, &v) in relaxed.values.iter().enumerate() {
            if node.is_integer(i) {
                let frac = (v - v.round()).abs();
                if frac > INT_EPS {
                    let dist = (v.fract() - 0.5).abs();
                    match branch_var {
                        Some((_, _, bd)) if bd <= dist => {}
                        _ => branch_var = Some((i, v, dist)),
                    }
                }
            }
        }

        match branch_var {
            None => {
                // Integral: candidate incumbent. A point from an inexact
                // relaxation is re-checked against the node's constraints
                // before being trusted.
                if !relaxed.exact && !node.is_feasible(&relaxed.values) {
                    continue;
                }
                let better = match &incumbent {
                    None => true,
                    Some(best) => {
                        relaxed.objective > best_objective_max(best, minimizing) + INT_EPS
                    }
                };
                if better {
                    incumbent = Some(Solution {
                        values: relaxed.values,
                        objective: if minimizing {
                            -relaxed.objective
                        } else {
                            relaxed.objective
                        },
                        stats,
                        exact: relaxed.exact,
                    });
                }
            }
            Some((idx, value, _)) => {
                let floor = value.floor();
                let ceil = value.ceil();

                let mut le = node.clone();
                let mut row = vec![0.0; le.num_vars()];
                row[idx] = 1.0;
                le.add_constraint(row.clone(), Relation::Le, floor);

                let mut ge = node;
                ge.add_constraint(row, Relation::Ge, ceil);

                // Push the ≥ branch first so the ≤ branch (often tighter
                // for packing-style problems) is explored first.
                stack.push(ge);
                stack.push(le);
            }
        }
    }

    if root_unbounded {
        return Err(SolveError::Unbounded);
    }
    match incumbent {
        Some(mut sol) => {
            sol.stats = stats;
            // Snap integral variables exactly.
            for (i, v) in sol.values.iter_mut().enumerate() {
                if problem.is_integer(i) {
                    *v = v.round();
                }
            }
            sol.objective = problem.objective_value(&sol.values);
            Ok(sol)
        }
        None => Err(SolveError::Infeasible),
    }
}

/// Incumbent objective in maximization space.
fn best_objective_max(best: &Solution, minimizing: bool) -> f64 {
    if minimizing {
        -best.objective
    } else {
        best.objective
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Problem;

    #[test]
    fn knapsack_small() {
        // max 10a + 6b + 4c s.t. a+b+c<=100, 10a+4b+5c<=600, 2a+2b+6c<=300
        // LP opt is fractional; integer opt is 732 at close-by point.
        let mut p = Problem::maximize(vec![10.0, 6.0, 4.0]);
        p.add_constraint(vec![1.0, 1.0, 1.0], Relation::Le, 100.0);
        p.add_constraint(vec![10.0, 4.0, 5.0], Relation::Le, 600.0);
        p.add_constraint(vec![2.0, 2.0, 6.0], Relation::Le, 300.0);
        p.set_all_integer(true);
        let sol = p.solve().unwrap();
        for v in &sol.values {
            assert!((v - v.round()).abs() < 1e-9);
        }
        assert!((sol.objective - 732.0).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn integrality_changes_optimum() {
        // max x s.t. 2x <= 5: LP gives 2.5, ILP gives 2.
        let mut p = Problem::maximize(vec![1.0]);
        p.add_constraint(vec![2.0], Relation::Le, 5.0);
        let lp = p.solve().unwrap();
        assert!((lp.objective - 2.5).abs() < 1e-9);
        p.set_all_integer(true);
        let ilp = p.solve().unwrap();
        assert!((ilp.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_integer() {
        // max x + y, x integer, s.t. 2x + y <= 5.5, y <= 1.2
        // best: x = 2, y = 1.2 -> 3.2
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_constraint(vec![2.0, 1.0], Relation::Le, 5.5);
        p.add_constraint(vec![0.0, 1.0], Relation::Le, 1.2);
        p.set_integer(0, true);
        let sol = p.solve().unwrap();
        assert!((sol.values[0] - 2.0).abs() < 1e-9);
        assert!((sol.objective - 3.2).abs() < 1e-6);
    }

    #[test]
    fn infeasible_integrality() {
        // 0.4 <= x <= 0.6 has a continuous point but no integer point.
        let mut p = Problem::maximize(vec![1.0]);
        p.add_constraint(vec![1.0], Relation::Ge, 0.4);
        p.add_constraint(vec![1.0], Relation::Le, 0.6);
        p.set_all_integer(true);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_integer_problem() {
        let mut p = Problem::maximize(vec![1.0]);
        p.set_all_integer(true);
        p.add_constraint(vec![-1.0], Relation::Le, 0.0); // x >= 0, vacuous
        assert_eq!(p.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn minimization_milp() {
        // min 3x + 4y s.t. x + 2y >= 14, 3x - y >= 0, x - y <= 2, integer.
        let mut p = Problem::minimize(vec![3.0, 4.0]);
        p.add_constraint(vec![1.0, 2.0], Relation::Ge, 14.0);
        p.add_constraint(vec![3.0, -1.0], Relation::Ge, 0.0);
        p.add_constraint(vec![1.0, -1.0], Relation::Le, 2.0);
        p.set_all_integer(true);
        let sol = p.solve().unwrap();
        assert!(p.is_feasible(&sol.values));
        for v in &sol.values {
            assert!((v - v.round()).abs() < 1e-9);
        }
        // LP optimum is at (2, 6) -> 30, which is integral already.
        assert!((sol.objective - 30.0).abs() < 1e-6, "{}", sol.objective);
    }

    #[test]
    fn node_limit_respected() {
        let mut p = Problem::maximize(vec![1.0, 1.0, 1.0, 1.0]);
        p.add_constraint(vec![3.1, 5.9, 7.3, 9.7], Relation::Le, 1000.0);
        p.set_all_integer(true);
        p.set_node_limit(1);
        assert!(matches!(
            p.solve(),
            Err(SolveError::NodeLimit) | Ok(_)
        ));
    }

    #[test]
    fn stats_populated() {
        let mut p = Problem::maximize(vec![5.0, 4.0]);
        p.add_constraint(vec![6.0, 4.0], Relation::Le, 24.0);
        p.add_constraint(vec![1.0, 2.0], Relation::Le, 6.0);
        p.set_all_integer(true);
        let sol = p.solve().unwrap();
        assert!(sol.stats.nodes >= 1);
    }
}
