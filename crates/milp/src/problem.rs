//! Problem definition types for linear and mixed-integer programs.

use crate::branch;
use crate::simplex::{self, LpSolution, LpStatus};
use crate::{Solution, SolveError, EPS};

/// Direction of optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Sense {
    /// Maximize the objective (the paper's Eq. 3.3 form).
    #[default]
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `coeffs · x ≤ rhs`
    Le,
    /// `coeffs · x = rhs`
    Eq,
    /// `coeffs · x ≥ rhs`
    Ge,
}

/// A single linear constraint `coeffs · x (rel) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// One coefficient per decision variable.
    pub coeffs: Vec<f64>,
    /// The relational operator.
    pub rel: Relation,
    /// Right-hand side constant.
    pub rhs: f64,
}

impl Constraint {
    /// Creates a new constraint.
    pub fn new(coeffs: Vec<f64>, rel: Relation, rhs: f64) -> Self {
        Self { coeffs, rel, rhs }
    }

    /// Evaluates whether `point` satisfies this constraint within [`EPS`]
    /// scaled by the constraint magnitude.
    pub fn is_satisfied(&self, point: &[f64]) -> bool {
        let lhs: f64 = self
            .coeffs
            .iter()
            .zip(point)
            .map(|(c, x)| c * x)
            .sum();
        let tol = EPS.max(1e-7 * (1.0 + self.rhs.abs()));
        match self.rel {
            Relation::Le => lhs <= self.rhs + tol,
            Relation::Eq => (lhs - self.rhs).abs() <= tol,
            Relation::Ge => lhs >= self.rhs - tol,
        }
    }
}

/// A linear program, optionally with integrality requirements on a subset
/// of the variables. All variables are implicitly non-negative, matching
/// the paper's pattern-multiplicity variables `L_i ≥ 0`.
///
/// # Example
///
/// ```
/// use gcs_milp::{Problem, Relation};
///
/// # fn main() -> Result<(), gcs_milp::SolveError> {
/// // maximize x + y  s.t.  2x + y <= 3
/// let mut p = Problem::maximize(vec![1.0, 1.0]);
/// p.add_constraint(vec![2.0, 1.0], Relation::Le, 3.0);
/// let sol = p.solve()?;
/// assert!((sol.objective - 3.0).abs() < 1e-6); // y = 3
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) objective: Vec<f64>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) integer: Vec<bool>,
    pub(crate) node_limit: usize,
}

impl Problem {
    /// Creates a maximization problem over `objective.len()` non-negative
    /// variables.
    pub fn maximize(objective: Vec<f64>) -> Self {
        Self::with_sense(Sense::Maximize, objective)
    }

    /// Creates a minimization problem over `objective.len()` non-negative
    /// variables.
    pub fn minimize(objective: Vec<f64>) -> Self {
        Self::with_sense(Sense::Minimize, objective)
    }

    fn with_sense(sense: Sense, objective: Vec<f64>) -> Self {
        let n = objective.len();
        Self {
            sense,
            objective,
            constraints: Vec::new(),
            integer: vec![false; n],
            node_limit: 200_000,
        }
    }

    /// Number of decision variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds the constraint `coeffs · x (rel) rhs`.
    ///
    /// # Panics
    ///
    /// Panics if `coeffs.len()` differs from the number of variables.
    pub fn add_constraint(&mut self, coeffs: Vec<f64>, rel: Relation, rhs: f64) -> &mut Self {
        assert_eq!(
            coeffs.len(),
            self.num_vars(),
            "constraint arity {} does not match variable count {}",
            coeffs.len(),
            self.num_vars()
        );
        self.constraints.push(Constraint::new(coeffs, rel, rhs));
        self
    }

    /// Marks variable `idx` as integer (or relaxes it back to continuous).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set_integer(&mut self, idx: usize, integral: bool) -> &mut Self {
        self.integer[idx] = integral;
        self
    }

    /// Marks every variable as integer (or all continuous).
    pub fn set_all_integer(&mut self, integral: bool) -> &mut Self {
        for flag in &mut self.integer {
            *flag = integral;
        }
        self
    }

    /// Returns whether variable `idx` must be integral.
    pub fn is_integer(&self, idx: usize) -> bool {
        self.integer[idx]
    }

    /// Replaces the branch & bound node budget (default 200 000).
    pub fn set_node_limit(&mut self, limit: usize) -> &mut Self {
        self.node_limit = limit;
        self
    }

    /// Checks `point` against every constraint and non-negativity.
    pub fn is_feasible(&self, point: &[f64]) -> bool {
        point.len() == self.num_vars()
            && point.iter().all(|&x| x >= -EPS)
            && self.constraints.iter().all(|c| c.is_satisfied(point))
    }

    /// Evaluates the objective at `point` (in the problem's own sense).
    pub fn objective_value(&self, point: &[f64]) -> f64 {
        self.objective
            .iter()
            .zip(point)
            .map(|(c, x)| c * x)
            .sum()
    }

    fn validate(&self) -> Result<(), SolveError> {
        if self.objective.is_empty() {
            return Err(SolveError::Malformed("problem has no variables".into()));
        }
        for (i, c) in self.constraints.iter().enumerate() {
            if c.coeffs.len() != self.num_vars() {
                return Err(SolveError::Malformed(format!(
                    "constraint {i} has arity {} but problem has {} variables",
                    c.coeffs.len(),
                    self.num_vars()
                )));
            }
            if !c.rhs.is_finite() || c.coeffs.iter().any(|v| !v.is_finite()) {
                return Err(SolveError::Malformed(format!(
                    "constraint {i} contains a non-finite coefficient"
                )));
            }
        }
        if self.objective.iter().any(|v| !v.is_finite()) {
            return Err(SolveError::Malformed(
                "objective contains a non-finite coefficient".into(),
            ));
        }
        Ok(())
    }

    /// Solves the LP relaxation only, ignoring integrality flags.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`], [`SolveError::Unbounded`],
    /// [`SolveError::Malformed`], or [`SolveError::BudgetExhausted`]
    /// when the simplex iteration budget ran out before a feasible point
    /// was found (a budget hit *after* reaching feasibility is returned
    /// as a solution with `exact == false` instead).
    pub fn solve_relaxation(&self) -> Result<Solution, SolveError> {
        self.validate()?;
        let lp = self.as_max_problem();
        match simplex::solve(&lp.objective, &lp.constraints) {
            LpSolution {
                status: status @ (LpStatus::Optimal | LpStatus::BudgetExhausted),
                values,
                objective,
            } if !values.is_empty() => Ok(Solution {
                values,
                objective: match self.sense {
                    Sense::Maximize => objective,
                    Sense::Minimize => -objective,
                },
                stats: Default::default(),
                exact: status == LpStatus::Optimal,
            }),
            LpSolution {
                status: LpStatus::Infeasible,
                ..
            } => Err(SolveError::Infeasible),
            LpSolution {
                status: LpStatus::Unbounded,
                ..
            } => Err(SolveError::Unbounded),
            _ => Err(SolveError::BudgetExhausted),
        }
    }

    /// Solves the problem: plain simplex if no variable is integral,
    /// branch & bound otherwise.
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] if no feasible point exists,
    /// [`SolveError::Unbounded`] if the relaxation is unbounded,
    /// [`SolveError::NodeLimit`] if branch & bound exhausts its node budget,
    /// and [`SolveError::Malformed`] for structurally invalid input.
    pub fn solve(&self) -> Result<Solution, SolveError> {
        self.validate()?;
        if self.integer.iter().any(|&b| b) {
            branch::solve(self)
        } else {
            self.solve_relaxation()
        }
    }

    /// Returns an equivalent maximization problem (negating the objective
    /// for minimization input). Constraints are shared verbatim.
    pub(crate) fn as_max_problem(&self) -> Problem {
        match self.sense {
            Sense::Maximize => self.clone(),
            Sense::Minimize => {
                let mut p = self.clone();
                p.sense = Sense::Maximize;
                for c in &mut p.objective {
                    *c = -*c;
                }
                p
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraint_satisfaction() {
        let c = Constraint::new(vec![1.0, 2.0], Relation::Le, 5.0);
        assert!(c.is_satisfied(&[1.0, 2.0]));
        assert!(!c.is_satisfied(&[2.0, 2.0]));
        let e = Constraint::new(vec![1.0, 1.0], Relation::Eq, 2.0);
        assert!(e.is_satisfied(&[1.0, 1.0]));
        assert!(!e.is_satisfied(&[1.5, 1.0]));
        let g = Constraint::new(vec![1.0, 0.0], Relation::Ge, 1.0);
        assert!(g.is_satisfied(&[1.0, 0.0]));
        assert!(!g.is_satisfied(&[0.5, 9.0]));
    }

    #[test]
    fn simple_lp_maximize() {
        let mut p = Problem::maximize(vec![3.0, 5.0]);
        p.add_constraint(vec![1.0, 0.0], Relation::Le, 4.0);
        p.add_constraint(vec![0.0, 2.0], Relation::Le, 12.0);
        p.add_constraint(vec![3.0, 2.0], Relation::Le, 18.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 36.0).abs() < 1e-6);
        assert!((sol.values[0] - 2.0).abs() < 1e-6);
        assert!((sol.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn simple_lp_minimize() {
        // minimize x + y s.t. x + y >= 2  -> objective 2
        let mut p = Problem::minimize(vec![1.0, 1.0]);
        p.add_constraint(vec![1.0, 1.0], Relation::Ge, 2.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::maximize(vec![1.0]);
        p.add_constraint(vec![1.0], Relation::Le, 1.0);
        p.add_constraint(vec![1.0], Relation::Ge, 2.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_constraint(vec![1.0, -1.0], Relation::Le, 1.0);
        assert_eq!(p.solve().unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn equality_constraints() {
        // maximize 2x + 3y s.t. x + y = 4, x - y = 0  => x = y = 2, obj = 10
        let mut p = Problem::maximize(vec![2.0, 3.0]);
        p.add_constraint(vec![1.0, 1.0], Relation::Eq, 4.0);
        p.add_constraint(vec![1.0, -1.0], Relation::Eq, 0.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 10.0).abs() < 1e-6);
    }

    #[test]
    fn malformed_rejected() {
        let p = Problem::maximize(vec![]);
        assert!(matches!(p.solve(), Err(SolveError::Malformed(_))));

        let mut p = Problem::maximize(vec![1.0]);
        p.add_constraint(vec![f64::NAN], Relation::Le, 1.0);
        assert!(matches!(p.solve(), Err(SolveError::Malformed(_))));
    }

    #[test]
    #[should_panic(expected = "constraint arity")]
    fn arity_mismatch_panics() {
        let mut p = Problem::maximize(vec![1.0, 2.0]);
        p.add_constraint(vec![1.0], Relation::Le, 1.0);
    }

    #[test]
    fn feasibility_check_includes_nonnegativity() {
        let mut p = Problem::maximize(vec![1.0, 1.0]);
        p.add_constraint(vec![1.0, 1.0], Relation::Le, 10.0);
        assert!(p.is_feasible(&[1.0, 2.0]));
        assert!(!p.is_feasible(&[-1.0, 2.0]));
        assert!(!p.is_feasible(&[1.0]));
    }

    #[test]
    fn minimize_relaxation_sign() {
        let mut p = Problem::minimize(vec![2.0]);
        p.add_constraint(vec![1.0], Relation::Ge, 3.0);
        let sol = p.solve_relaxation().unwrap();
        assert!((sol.objective - 6.0).abs() < 1e-6);
        assert!((sol.values[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_does_not_cycle() {
        // Classic degenerate example (Beale's cycling example structure).
        let mut p = Problem::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        p.add_constraint(vec![0.25, -60.0, -0.04, 9.0], Relation::Le, 0.0);
        p.add_constraint(vec![0.5, -90.0, -0.02, 3.0], Relation::Le, 0.0);
        p.add_constraint(vec![0.0, 0.0, 1.0, 0.0], Relation::Le, 1.0);
        let sol = p.solve().unwrap();
        assert!((sol.objective - 0.05).abs() < 1e-6);
    }
}
