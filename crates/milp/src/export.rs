//! Export of problems to the CPLEX LP text format.
//!
//! Useful for debugging a formulation against an external solver, and
//! for regression-testing the exact ILPs the co-scheduler builds. Only
//! the subset of the format the crate can produce is emitted: an
//! objective, linear constraints, and integrality markers (all
//! variables are non-negative by construction, which is the LP-format
//! default).

use crate::problem::{Problem, Relation, Sense};
use std::fmt::Write as _;

/// Renders `problem` in CPLEX LP format.
///
/// Variables are named `x0, x1, ...` in index order; constraints
/// `c0, c1, ...`.
///
/// # Example
///
/// ```
/// use gcs_milp::{Problem, Relation};
/// use gcs_milp::export::to_lp_string;
///
/// let mut p = Problem::maximize(vec![3.0, 2.0]);
/// p.add_constraint(vec![1.0, 1.0], Relation::Le, 4.0);
/// p.set_all_integer(true);
/// let text = to_lp_string(&p);
/// assert!(text.starts_with("Maximize"));
/// assert!(text.contains("c0: 1 x0 + 1 x1 <= 4"));
/// assert!(text.contains("General"));
/// ```
pub fn to_lp_string(problem: &Problem) -> String {
    let mut out = String::new();
    out.push_str(match problem.sense() {
        Sense::Maximize => "Maximize\n",
        Sense::Minimize => "Minimize\n",
    });
    out.push_str(" obj:");
    write_linear(&mut out, problem.objective());
    out.push_str("\nSubject To\n");
    for (i, c) in problem.constraints().iter().enumerate() {
        let _ = write!(out, " c{i}:");
        write_linear(&mut out, &c.coeffs);
        let rel = match c.rel {
            Relation::Le => "<=",
            Relation::Eq => "=",
            Relation::Ge => ">=",
        };
        let _ = writeln!(out, " {rel} {}", trim_float(c.rhs));
    }
    let integers: Vec<usize> = (0..problem.num_vars())
        .filter(|&i| problem.is_integer(i))
        .collect();
    if !integers.is_empty() {
        out.push_str("General\n");
        for i in integers {
            let _ = write!(out, " x{i}");
        }
        out.push('\n');
    }
    out.push_str("End\n");
    out
}

fn write_linear(out: &mut String, coeffs: &[f64]) {
    let mut first = true;
    for (i, &c) in coeffs.iter().enumerate() {
        if c == 0.0 {
            continue;
        }
        if first {
            let _ = write!(out, " {} x{i}", trim_float(c));
            first = false;
        } else if c < 0.0 {
            let _ = write!(out, " - {} x{i}", trim_float(-c));
        } else {
            let _ = write!(out, " + {} x{i}", trim_float(c));
        }
    }
    if first {
        out.push_str(" 0 x0");
    }
}

/// Prints floats without a trailing `.0` for integral values.
fn trim_float(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Problem, Relation};

    #[test]
    fn full_document_structure() {
        let mut p = Problem::maximize(vec![1.5, -2.0, 0.0]);
        p.add_constraint(vec![1.0, 2.0, 0.0], Relation::Le, 10.0);
        p.add_constraint(vec![0.0, 1.0, -1.0], Relation::Eq, 0.0);
        p.add_constraint(vec![1.0, 0.0, 1.0], Relation::Ge, 2.5);
        p.set_integer(0, true);
        let text = to_lp_string(&p);
        assert!(text.starts_with("Maximize\n obj: 1.5 x0 - 2 x1\n"));
        assert!(text.contains("c0: 1 x0 + 2 x1 <= 10"));
        assert!(text.contains("c1: 1 x1 - 1 x2 = 0"));
        assert!(text.contains("c2: 1 x0 + 1 x2 >= 2.5"));
        assert!(text.contains("General\n x0\n"));
        assert!(text.ends_with("End\n"));
    }

    #[test]
    fn minimize_header() {
        let p = Problem::minimize(vec![1.0]);
        assert!(to_lp_string(&p).starts_with("Minimize"));
    }

    #[test]
    fn zero_objective_still_valid() {
        let mut p = Problem::maximize(vec![0.0, 0.0]);
        p.add_constraint(vec![1.0, 1.0], Relation::Le, 1.0);
        let text = to_lp_string(&p);
        assert!(text.contains("obj: 0 x0"));
    }

    #[test]
    fn continuous_problem_has_no_general_section() {
        let mut p = Problem::maximize(vec![1.0]);
        p.add_constraint(vec![1.0], Relation::Le, 1.0);
        assert!(!to_lp_string(&p).contains("General"));
    }
}
