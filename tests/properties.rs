//! Property-based tests over the core invariants: the MILP solver
//! against the enumeration oracle, pattern combinatorics, queue
//! construction, classification, and cache behaviour.
//!
//! The harness is deterministic and dependency-free: cases are drawn
//! from [`gcs_sim::rng::SimRng`] with fixed seeds (see
//! `tests/README.md`). `--features proptest-tests` widens the sweep.

use gcs_core::classify::{classify, AppClass, Thresholds};
use gcs_core::ilp::solve_with_e;
use gcs_core::pattern::{enumerate_patterns, num_patterns, Pattern};
use gcs_core::profile::AppProfile;
use gcs_core::queues::{census, queue_with_distribution, Distribution};
use gcs_milp::enumerate::solve_by_enumeration;
use gcs_milp::{Problem, Relation};
use gcs_sim::cache::{Access, Cache};
use gcs_sim::config::CacheConfig;
use gcs_sim::rng::SimRng;

/// Cases per property.
const CASES: usize = if cfg!(feature = "proptest-tests") { 200 } else { 48 };

fn uniform(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    lo + rng.gen_f64() * (hi - lo)
}

/// Branch & bound must agree with exhaustive enumeration on random
/// small all-integer maximization problems.
#[test]
fn milp_matches_enumeration() {
    let mut rng = SimRng::seed_from_u64(11);
    for case in 0..CASES {
        let n = 2 + rng.gen_range(2) as usize;
        let obj: Vec<f64> = (0..n).map(|_| uniform(&mut rng, 0.0, 10.0)).collect();
        let mut p = Problem::maximize(obj);
        // Guarantee a bounding row so enumeration has finite bounds.
        p.add_constraint(vec![1.0; n], Relation::Le, 12.0);
        for _ in 0..1 + rng.gen_range(3) {
            let coeffs: Vec<f64> = (0..n).map(|_| uniform(&mut rng, 0.0, 5.0)).collect();
            let rhs = uniform(&mut rng, 1.0, 20.0);
            p.add_constraint(coeffs, Relation::Le, rhs);
        }
        p.set_all_integer(true);
        let bb = p.solve().expect("bounded feasible problem");
        let oracle = solve_by_enumeration(&p).expect("oracle");
        assert!(
            (bb.objective - oracle.objective).abs() < 1e-6,
            "case {case}: b&b {} vs oracle {}",
            bb.objective,
            oracle.objective
        );
        assert!(p.is_feasible(&bb.values), "case {case}");
    }
}

/// The grouping ILP always covers the census exactly, for any feasible
/// class census divisible by the concurrency.
#[test]
fn grouping_covers_census() {
    let mut rng = SimRng::seed_from_u64(12);
    let mut ran = 0;
    while ran < CASES {
        let nc = 2 + rng.gen_range(2) as u32;
        let mut counts = [0u32; 4];
        let mut total = 0;
        for c in &mut counts {
            *c = rng.gen_range(4) as u32 * nc;
            total += *c;
        }
        if total == 0 {
            continue;
        }
        ran += 1;
        let patterns = enumerate_patterns(nc);
        let e: Vec<f64> = (0..patterns.len()).map(|i| 1.0 + i as f64 * 0.1).collect();
        let sol = solve_with_e(counts, nc, &e).expect("feasible");
        let mut used = [0u32; 4];
        for g in sol.groups() {
            assert_eq!(g.len(), nc as usize);
            for c in g {
                used[c.index()] += 1;
            }
        }
        assert_eq!(used, counts);
    }
}

/// Pattern enumeration size always matches the closed form Eq. 3.2,
/// every pattern sums to NC, and patterns are unique.
#[test]
fn pattern_enumeration_invariants() {
    for nc in 1u32..6 {
        let pats = enumerate_patterns(nc);
        assert_eq!(pats.len() as u64, num_patterns(4, nc));
        for p in &pats {
            assert_eq!(p.size(), nc);
        }
        for (i, a) in pats.iter().enumerate() {
            for b in &pats[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}

/// The ILP objective is invariant under scaling all e by a positive
/// constant (the argmax cannot change, so the chosen multiplicities
/// achieve the scaled optimum).
#[test]
fn ilp_scale_invariance() {
    let mut rng = SimRng::seed_from_u64(13);
    let e: Vec<f64> = (1..=10).map(|i| f64::from(i) * 0.01).collect();
    let a = solve_with_e([2, 5, 2, 5], 2, &e).expect("base");
    for _ in 0..CASES.min(24) {
        let k = uniform(&mut rng, 0.1, 10.0);
        let scaled: Vec<f64> = e.iter().map(|v| v * k).collect();
        let b = solve_with_e([2, 5, 2, 5], 2, &scaled).expect("scaled");
        assert!(
            (a.objective * k - b.objective).abs() < 1e-6,
            "k={k}: {} vs {}",
            a.objective * k,
            b.objective
        );
    }
}

/// Queue construction always matches the requested census, for every
/// distribution and a range of lengths.
#[test]
fn queues_honor_distributions() {
    for len in 8u32..40 {
        for dist in Distribution::ALL {
            let q = queue_with_distribution(dist, len);
            assert_eq!(q.len() as u32, len);
            assert_eq!(census(&q), dist.class_counts(len));
        }
    }
}

/// Classification is total and deterministic: any finite profile lands
/// in exactly one class, and raising memory bandwidth can only move the
/// class toward M.
#[test]
fn classification_total_and_monotone() {
    let mut rng = SimRng::seed_from_u64(14);
    let t = Thresholds::paper_gtx480();
    for case in 0..CASES * 4 {
        let p = AppProfile {
            name: "x".into(),
            memory_bw: uniform(&mut rng, 0.0, 200.0),
            l2_l1_bw: uniform(&mut rng, 0.0, 300.0),
            ipc: uniform(&mut rng, 0.0, 2000.0),
            r: rng.gen_f64(),
            utilization: 0.0,
            cycles: 1,
            thread_insts: 1,
            num_sms: 60,
        };
        let c = classify(&p, &t);
        let mut hi = p.clone();
        hi.memory_bw += 150.0;
        let c_hi = classify(&hi, &t);
        assert!(c_hi <= c, "case {case}: raising MB moved {c:?} away from M: {c_hi:?}");
    }
}

/// LP-format export/parse round-trips preserve the optimum for random
/// bounded integer problems.
#[test]
fn lp_format_round_trip() {
    use gcs_milp::export::to_lp_string;
    use gcs_milp::parse::parse_lp;
    let mut rng = SimRng::seed_from_u64(15);
    for case in 0..CASES {
        let n = 2 + rng.gen_range(2) as usize;
        let obj: Vec<f64> = (0..n).map(|_| uniform(&mut rng, -5.0, 5.0)).collect();
        let bound = uniform(&mut rng, 1.0, 20.0);
        let mut p = Problem::maximize(obj);
        p.add_constraint(vec![1.0; n], Relation::Le, bound);
        p.set_all_integer(true);
        let q = parse_lp(&to_lp_string(&p)).expect("round trip parses");
        let a = p.solve().expect("original solves");
        let b = q.solve().expect("round-tripped solves");
        assert!(
            (a.objective - b.objective).abs() < 1e-6,
            "case {case}: {} vs {}",
            a.objective,
            b.objective
        );
    }
}

/// LRU cache: after accessing a working set no larger than the cache, a
/// second pass hits every line.
#[test]
fn cache_retains_fitting_working_set() {
    for lines in 1u64..32 {
        let mut c = Cache::new(CacheConfig {
            bytes: 32 * 128,
            line_bytes: 128,
            ways: 4,
        });
        for i in 0..lines {
            c.access(i * 128);
        }
        for i in 0..lines {
            assert_eq!(c.access(i * 128), Access::Hit, "line {i} evicted");
        }
    }
}

/// Pattern e-coefficients are antitone in slowdown: uniformly worse
/// interference can only lower e.
#[test]
fn e_antitone_in_slowdown() {
    use gcs_core::interference::InterferenceMatrix;
    let mut rng = SimRng::seed_from_u64(16);
    let p = Pattern::new([1, 1, 0, 0]);
    for _ in 0..CASES {
        let s1 = uniform(&mut rng, 1.0, 5.0);
        let extra = uniform(&mut rng, 0.1, 5.0);
        let low = InterferenceMatrix::uniform(s1);
        let high = InterferenceMatrix::uniform(s1 + extra);
        assert!(p.e_coefficient(&low) > p.e_coefficient(&high));
    }
}

/// The build_problem constraint system always admits the FCFS solution,
/// so the ILP optimum is at least the same-class-pairing objective.
#[test]
fn ilp_never_loses_to_any_feasible_grouping() {
    for seed in 0u64..CASES as u64 {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        let e: Vec<f64> = (0..10).map(|_| 0.01 + rng()).collect();
        let census = [2u32, 2, 2, 2];
        let sol = solve_with_e(census, 2, &e).expect("feasible");
        // Greedy feasible point: pair same classes: M-M, MC-MC, C-C, A-A.
        let patterns = enumerate_patterns(2);
        let same_class: f64 = patterns
            .iter()
            .zip(&e)
            .filter(|(p, _)| p.counts().contains(&2))
            .map(|(_, v)| v)
            .sum();
        assert!(
            sol.objective >= same_class - 1e-9,
            "seed {seed}: ILP {} below the same-class grouping {}",
            sol.objective,
            same_class
        );
    }
}

#[test]
fn pattern_display_order_is_stable() {
    let pats = enumerate_patterns(2);
    assert_eq!(pats[0].to_string(), "M-M");
    assert_eq!(pats[9].to_string(), "A-A");
}

#[test]
fn class_ordering_reflects_memory_pressure() {
    // AppClass::ALL is ordered M < MC < C < A; the monotone test above
    // leans on this.
    assert!(AppClass::M < AppClass::Mc);
    assert!(AppClass::Mc < AppClass::C);
    assert!(AppClass::C < AppClass::A);
}
