//! Step-mode equivalence: event-horizon stepping must be bit-identical
//! to cycle-by-cycle stepping.
//!
//! `StepMode::EventHorizon` (the default) jumps the device clock over
//! every cycle in which nothing can happen — including memory-bound
//! stretches where all warps wait on DRAM. The engine's contract is
//! that this is *purely* a wall-clock optimization: every counter in
//! [`SimStats`] and the final device cycle are exactly the values the
//! slow reference (`StepMode::Cycle`) produces. This suite pins that
//! contract across the full 14-workload suite alone, an Even co-run,
//! and an SMRA-controlled run with a small `T_C` window (the window
//! boundaries are skip barriers, so the controller must observe
//! identical samples and make identical decisions).

use gcs_core::smra::{SmraAction, SmraController, SmraParams};
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::{Gpu, StepMode};
use gcs_sim::stats::SimStats;
use gcs_workloads::{Benchmark, Scale};

const MAX_CYCLES: u64 = 50_000_000;

fn device(mode: StepMode) -> Gpu {
    let mut gpu = Gpu::new(GpuConfig::test_small()).expect("device");
    gpu.set_step_mode(mode);
    gpu
}

fn run_alone(bench: Benchmark, mode: StepMode) -> (SimStats, u64) {
    let mut gpu = device(mode);
    gpu.launch(bench.kernel(Scale::TEST)).expect("launch");
    gpu.partition_even();
    gpu.run(MAX_CYCLES).expect("alone run finishes");
    (gpu.stats().clone(), gpu.cycle())
}

fn run_even_corun(a: Benchmark, b: Benchmark, mode: StepMode) -> (SimStats, u64) {
    let mut gpu = device(mode);
    gpu.launch(a.kernel(Scale::TEST)).expect("launch a");
    gpu.launch(b.kernel(Scale::TEST)).expect("launch b");
    gpu.partition_even();
    gpu.run(MAX_CYCLES).expect("co-run finishes");
    (gpu.stats().clone(), gpu.cycle())
}

fn run_smra(mode: StepMode) -> (SimStats, u64, Vec<SmraAction>) {
    let mut gpu = device(mode);
    // A bandwidth-hostile app next to a compute-dense one: the SMRA
    // controller has real decisions to make, and most cycles are
    // skippable DRAM waits — the regime where divergence would show.
    let a = gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("a");
    let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).expect("b");
    gpu.partition_even();
    let params = SmraParams {
        tc: 400, // small window: many controller invocations
        ..SmraParams::for_device(gpu.config().num_sms, 2)
    };
    let mut ctl = SmraController::new(params, vec![a, b], &gpu);
    ctl.run_to_completion(&mut gpu, MAX_CYCLES).expect("smra run");
    (gpu.stats().clone(), gpu.cycle(), ctl.actions().to_vec())
}

#[test]
fn alone_runs_are_bit_identical_across_step_modes() {
    for bench in Benchmark::ALL {
        let (stats_cycle, cyc_cycle) = run_alone(bench, StepMode::Cycle);
        let (stats_eh, cyc_eh) = run_alone(bench, StepMode::EventHorizon);
        assert_eq!(
            cyc_cycle, cyc_eh,
            "{bench:?}: final cycle diverged between step modes"
        );
        assert_eq!(
            stats_cycle, stats_eh,
            "{bench:?}: SimStats diverged between step modes"
        );
    }
}

#[test]
fn even_corun_is_bit_identical_across_step_modes() {
    let (stats_cycle, cyc_cycle) = run_even_corun(Benchmark::Gups, Benchmark::Spmv, StepMode::Cycle);
    let (stats_eh, cyc_eh) =
        run_even_corun(Benchmark::Gups, Benchmark::Spmv, StepMode::EventHorizon);
    assert_eq!(cyc_cycle, cyc_eh, "co-run final cycle diverged");
    assert_eq!(stats_cycle, stats_eh, "co-run SimStats diverged");
}

#[test]
fn smra_run_with_small_window_is_bit_identical_across_step_modes() {
    let (stats_cycle, cyc_cycle, actions_cycle) = run_smra(StepMode::Cycle);
    let (stats_eh, cyc_eh, actions_eh) = run_smra(StepMode::EventHorizon);
    assert_eq!(cyc_cycle, cyc_eh, "SMRA final cycle diverged");
    assert_eq!(
        actions_cycle, actions_eh,
        "SMRA decision trace diverged: T_C windows are not being \
         respected as skip barriers"
    );
    assert_eq!(stats_cycle, stats_eh, "SMRA SimStats diverged");
}

#[test]
fn event_horizon_is_the_default_mode() {
    let gpu = Gpu::new(GpuConfig::test_small()).expect("device");
    assert_eq!(gpu.step_mode(), StepMode::EventHorizon);
}
