//! Integration pins for the scheduler daemon (`gcs_sched::daemon`).
//!
//! The load-bearing guarantees:
//!
//! * **Session ≡ batch** — a daemon session that submits the same jobs
//!   at the same logical cycles drains to a [`SchedReport`] JSON that
//!   is *byte-identical* to the batch [`OnlineScheduler::run`] over the
//!   equivalent trace, in-process and over the wire, at 1/2/8 sweep
//!   threads. The daemon is the batch loop, incrementalised — not a
//!   second scheduler that can drift.
//! * **Hardening** — bounded admission surfaces as typed
//!   [`Response::Rejected`] backpressure; a drain is graceful and
//!   post-drain submits bounce with `draining: true`; a slow-loris TCP
//!   peer gets a typed timeout and the daemon serves the next
//!   connection; overload sheds are recorded as degradations, never
//!   silent.
//! * **Fault-injected byte-reproducibility** — a [`FaultyTransport`]
//!   session (seeded drop/truncate/flip/delay) produces the exact same
//!   fault transcript on every run, pinned against
//!   `tests/golden/daemon_fault_transcript.txt`
//!   (`GCS_UPDATE_GOLDEN=1` regenerates), and the daemon survives the
//!   whole ordeal well enough to drain a clean report afterwards.

use std::sync::Arc;
use std::time::Duration;

use gcs_core::interference::InterferenceMatrix;
use gcs_core::runner::{AllocationPolicy, Pipeline, RunConfig};
use gcs_core::SweepEngine;
use gcs_sched::{
    virtual_link, DaemonConfig, DaemonCore, FaultSpec, FaultyTransport, OnlineScheduler,
    OverloadPolicy, PolicyKind, Request, Response, RetryConfig, SchedClient, SchedConfig,
    TcpAcceptor, TcpTransport, Transport, TransportError, VirtualConnector, VirtualListener,
};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{ArrivalTrace, Benchmark, Scale};

fn run_config(concurrency: u32) -> RunConfig {
    RunConfig {
        gpu: GpuConfig::test_small(),
        scale: Scale::TEST,
        concurrency,
    }
}

fn pipeline_with_engine(engine: Arc<SweepEngine>) -> Pipeline {
    Pipeline::with_matrix_and_engine(
        run_config(2),
        InterferenceMatrix::synthetic_paper_shape(),
        engine,
    )
    .expect("pipeline")
}

fn sched_cfg(queue_capacity: usize) -> SchedConfig {
    SchedConfig {
        num_gpus: 1,
        queue_capacity,
        alloc: AllocationPolicy::Smra,
        replan_interval: None,
    }
}

/// The batch reference: [`OnlineScheduler::run`] over `trace`.
fn batch_json(trace: &ArrivalTrace, cfg: SchedConfig, threads: usize) -> String {
    let mut p = pipeline_with_engine(Arc::new(SweepEngine::new(threads)));
    let mut policy = PolicyKind::IlpEpoch.build();
    OnlineScheduler::new(&mut p, cfg)
        .unwrap()
        .run(trace, policy.as_mut())
        .expect("batch run")
        .to_json()
}

/// Runs the daemon loop over `listener` on its own thread, with its
/// own pipeline (built inside the thread), until a drain completes or
/// the connector is dropped.
fn spawn_daemon(
    listener: VirtualListener,
    cfg: DaemonConfig,
    threads: usize,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut p = pipeline_with_engine(Arc::new(SweepEngine::new(threads)));
        let mut d = DaemonCore::new(&mut p, PolicyKind::IlpEpoch.build(), cfg).unwrap();
        let mut listener = listener;
        d.serve(&mut listener).expect("serve");
    })
}

/// In-process daemon session ≡ batch run, byte-for-byte, at every
/// sweep-engine thread count.
#[test]
fn daemon_session_reproduces_batch_report_byte_for_byte() {
    let trace = ArrivalTrace::poisson(&Benchmark::ALL, 10, 30_000.0, 42);
    let cfg = sched_cfg(16);
    let mut renders = Vec::new();
    for threads in [1usize, 2, 8] {
        let reference = batch_json(&trace, cfg, threads);

        let mut p = pipeline_with_engine(Arc::new(SweepEngine::new(threads)));
        let mut d = DaemonCore::new(
            &mut p,
            PolicyKind::IlpEpoch.build(),
            DaemonConfig {
                sched: cfg,
                overload: OverloadPolicy::default(),
            },
        )
        .unwrap();
        for (i, a) in trace.arrivals().iter().enumerate() {
            let r = d.handle(Request::Submit {
                id: i as u64,
                bench: a.bench,
                at: a.time,
            });
            assert_eq!(r, Response::Submitted { id: i as u64 }, "{threads} threads");
        }
        let json = match d.handle(Request::Drain) {
            Response::Drained { json } => json,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(json, reference, "daemon vs batch at {threads} threads");
        renders.push(json);
    }
    assert_eq!(renders[0], renders[1], "1 vs 2 threads");
    assert_eq!(renders[0], renders[2], "1 vs 8 threads");
}

/// The same equivalence holds across the wire: a [`SchedClient`]
/// session over the virtual link drains to the batch bytes.
#[test]
fn wire_session_over_virtual_link_matches_batch() {
    let trace = ArrivalTrace::poisson(&Benchmark::ALL, 8, 20_000.0, 7);
    let cfg = sched_cfg(16);
    let reference = batch_json(&trace, cfg, 2);

    let (connector, listener) = virtual_link(None);
    let daemon = spawn_daemon(
        listener,
        DaemonConfig {
            sched: cfg,
            overload: OverloadPolicy::default(),
        },
        2,
    );

    let mut client = SchedClient::new(connector.connect().unwrap(), RetryConfig::default());
    for (i, a) in trace.arrivals().iter().enumerate() {
        let r = client
            .submit_with_retry(i as u64, a.bench, a.time)
            .expect("submit");
        assert_eq!(r, Response::Submitted { id: i as u64 });
    }
    let json = client.drain().expect("drain");
    assert_eq!(json, reference, "wire session vs batch");
    drop(client);
    drop(connector);
    daemon.join().expect("daemon thread");
}

/// Bounded admission over the wire: the overflow submit bounces with a
/// typed `Rejected` and a usable retry hint; the client retry loop
/// exhausts its budget against sustained pressure; a drain is graceful
/// and post-drain submits bounce with `draining: true`.
#[test]
fn wire_backpressure_drain_and_post_drain_rejection() {
    let (connector, listener) = virtual_link(None);
    let daemon = spawn_daemon(
        listener,
        DaemonConfig {
            sched: sched_cfg(1),
            overload: OverloadPolicy::default(),
        },
        1,
    );

    let retry = RetryConfig {
        max_attempts: 3,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_millis(1),
        seed: 11,
    };
    let mut client = SchedClient::new(connector.connect().unwrap(), retry);

    // First job fills the capacity-1 queue (dispatch defers until time
    // advances, so it stays pending).
    assert_eq!(
        client.request(&Request::Submit {
            id: 0,
            bench: Benchmark::Gups,
            at: 0,
        }),
        Ok(Response::Submitted { id: 0 })
    );
    // Overflow: typed rejection with a retry hint.
    match client.request(&Request::Submit {
        id: 1,
        bench: Benchmark::Hs,
        at: 0,
    }) {
        Ok(Response::Rejected {
            id,
            retry_after,
            draining,
        }) => {
            assert_eq!(id, 1);
            assert!(retry_after >= 1);
            assert!(!draining);
        }
        other => panic!("unexpected {other:?}"),
    }
    // The retry loop keeps trying (pressure never lifts at t=0), then
    // hands back the final rejection.
    let r = client.submit_with_retry(2, Benchmark::Sad, 0).unwrap();
    assert!(matches!(r, Response::Rejected { draining: false, .. }));
    assert_eq!(client.retries, 2, "attempts - 1 backoff sleeps");

    // Graceful drain: the queued job completes and the report renders.
    let json = client.drain().expect("drain");
    assert!(json.contains("\"policy\": \"ilp\""), "{json}");
    assert!(json.contains("\"id\":0"), "queued job completed: {json}");

    // Post-drain submits bounce with the draining flag — on the same
    // connection, which the daemon kept alive.
    match client.request(&Request::Submit {
        id: 3,
        bench: Benchmark::Lud,
        at: 9_999,
    }) {
        Ok(Response::Rejected { draining: true, .. }) => {}
        other => panic!("unexpected {other:?}"),
    }
    drop(client);
    drop(connector);
    daemon.join().expect("daemon thread");
}

/// Overload ladder against the real pipeline: flooding the queue above
/// both thresholds sheds to the cached plan and then to the greedy
/// planner, every shed lands in the drained report, and every job
/// still completes.
#[test]
fn overload_ladder_records_degradations_with_real_pipeline() {
    let mut p = pipeline_with_engine(Arc::new(SweepEngine::sequential()));
    let mut d = DaemonCore::new(
        &mut p,
        PolicyKind::IlpEpoch.build(),
        DaemonConfig {
            sched: sched_cfg(64),
            overload: OverloadPolicy {
                replan_pending_limit: Some(1),
                ilp_pending_limit: Some(4),
            },
        },
    )
    .unwrap();

    // t=0: three jobs and a settle-forcing advance, then a flood at
    // t=1 on top of the now-cached plan.
    for i in 0..3u64 {
        d.handle(Request::Submit {
            id: i,
            bench: Benchmark::ALL[i as usize % Benchmark::ALL.len()],
            at: 0,
        });
    }
    for i in 3..12u64 {
        d.handle(Request::Submit {
            id: i,
            bench: Benchmark::ALL[i as usize % Benchmark::ALL.len()],
            at: 1,
        });
    }
    match d.handle(Request::Status) {
        Response::Status { degradations, .. } => {
            assert!(degradations > 0, "sheds recorded before drain")
        }
        other => panic!("unexpected {other:?}"),
    }
    let json = match d.handle(Request::Drain) {
        Response::Drained { json } => json,
        other => panic!("unexpected {other:?}"),
    };
    assert!(json.contains("shed to cached-plan"), "rung 1: {json}");
    assert!(json.contains("shed to greedy"), "rung 2: {json}");
    assert!(json.contains("\"id\":11"), "all 12 jobs complete: {json}");
}

/// Slow-loris over real TCP: a peer that sends four header bytes and
/// stalls gets a typed timeout error and a closed connection — and the
/// daemon cleanly serves the next client.
#[test]
fn tcp_slow_loris_gets_typed_timeout_and_daemon_survives() {
    let tcp = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = tcp.local_addr().unwrap();
    let daemon = std::thread::spawn(move || {
        let mut p = pipeline_with_engine(Arc::new(SweepEngine::sequential()));
        let mut d =
            DaemonCore::new(
                &mut p,
                PolicyKind::Fcfs.build(),
                DaemonConfig {
                    sched: sched_cfg(8),
                    overload: OverloadPolicy::default(),
                },
            )
            .unwrap();
        let mut acceptor = TcpAcceptor::new(
            tcp,
            Some(Duration::from_millis(60)),
            Some(Duration::from_secs(5)),
        );
        d.serve(&mut acceptor).expect("serve");
    });

    // Connection 1: the slow loris. Four bytes of header, then silence.
    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut loris = TcpTransport::new(stream, Some(Duration::from_secs(5)), None).unwrap();
    loris.send_bytes(b"GCSD").unwrap();
    let resp = Response::decode(&loris.recv_frame().expect("typed reply")).unwrap();
    assert!(
        matches!(resp, Response::Error { ref kind, .. } if kind == "timeout"),
        "unexpected {resp:?}"
    );
    // The daemon hung up on us.
    assert!(matches!(
        loris.recv_frame(),
        Err(TransportError::Closed | TransportError::Proto(_))
    ));

    // Connection 2: a well-behaved client gets full service.
    let stream = std::net::TcpStream::connect(addr).expect("connect 2");
    let conn = TcpTransport::new(stream, Some(Duration::from_secs(5)), None).unwrap();
    let mut client = SchedClient::new(conn, RetryConfig::default());
    assert_eq!(
        client.request(&Request::Submit {
            id: 0,
            bench: Benchmark::Nn,
            at: 0,
        }),
        Ok(Response::Submitted { id: 0 })
    );
    let json = client.drain().expect("drain");
    assert!(json.contains("\"policy\": \"fcfs\""));
    drop(client);
    daemon.join().expect("daemon thread");
}

/// A hostile advertised length over the wire is refused with a typed
/// `oversize` error before any allocation, and the connection closes.
#[test]
fn oversize_frame_is_refused_with_typed_error() {
    let (connector, listener) = virtual_link(None);
    let daemon = spawn_daemon(
        listener,
        DaemonConfig {
            sched: sched_cfg(8),
            overload: OverloadPolicy::default(),
        },
        1,
    );
    let mut conn = connector.connect().unwrap();
    conn.recv_deadline = Some(Duration::from_secs(5));
    let mut header = Vec::new();
    header.extend_from_slice(b"GCSD");
    header.extend_from_slice(&1u32.to_le_bytes());
    header.extend_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB payload
    header.extend_from_slice(&0u64.to_le_bytes());
    conn.send_bytes(&header).unwrap();
    let resp = Response::decode(&conn.recv_frame().expect("typed reply")).unwrap();
    assert!(
        matches!(resp, Response::Error { ref kind, .. } if kind == "oversize"),
        "unexpected {resp:?}"
    );

    // The daemon is still alive for the next connection.
    let mut client = SchedClient::new(connector.connect().unwrap(), RetryConfig::default());
    let json = client.drain().expect("drain");
    assert!(json.contains("\"jobs\": []"));
    drop(client);
    drop(conn);
    drop(connector);
    daemon.join().expect("daemon thread");
}

// ----------------------------------------------------------------------
// Fault injection
// ----------------------------------------------------------------------

const FAULT_BASE_SEED: u64 = 0xDA3;
const FAULT_JOBS: u64 = 16;
/// Reconnect budget: every fault class severs at most once per frame,
/// so a scripted session can never legitimately need more.
const MAX_RECONNECTS: u64 = 64;

/// Drives a fixed submit script through a [`FaultyTransport`] client,
/// reconnecting (with per-connection seeds) whenever the transport or
/// the daemon gives up on a connection, then drains over a clean
/// connection. Returns the concatenated fault transcript and the final
/// report JSON.
///
/// Determinism argument: the proxy's damage is a pure function of
/// (seed, outbound frame index, frame length), and the client's control
/// flow depends only on frame *content* — sent requests, received
/// responses — never on wall-clock races. The client alternates
/// send/recv strictly, abandons a connection after any `Error` response
/// (the daemon may close header-desynced connections, so continuing
/// would race its close), and treats a recv timeout as a dropped frame.
/// Responses are never faulted, so the only timeout case is a frame the
/// daemon verifiably never received or never answered.
fn fault_scenario(connector: &VirtualConnector) -> (Vec<String>, String) {
    let fresh = |conn_idx: u64| {
        let mut sock = connector.connect().expect("connect");
        sock.recv_deadline = Some(Duration::from_millis(250));
        FaultyTransport::new(sock, FAULT_BASE_SEED + conn_idx, FaultSpec::SMOKE)
    };
    let mut transcript: Vec<String> = Vec::new();
    let mut conn_idx = 0u64;
    let mut faulty = fresh(conn_idx);
    let collect =
        |t: &mut Vec<String>, idx: u64, f: FaultyTransport<gcs_sched::VirtualSocket>| {
            t.extend(f.into_transcript().into_iter().map(|l| format!("conn {idx}: {l}")));
        };

    let mut i = 0u64;
    while i < FAULT_JOBS {
        let req = Request::Submit {
            id: i,
            bench: Benchmark::ALL[i as usize % Benchmark::ALL.len()],
            at: i * 500,
        };
        let sent = faulty.send_frame(&req.encode()).is_ok();
        let mut dead = !sent;
        if sent {
            match faulty.recv_frame() {
                Ok(frame) => {
                    match Response::decode(&frame) {
                        // An error response means the frame arrived
                        // damaged; the daemon may be about to close a
                        // desynced connection, so abandon it either way
                        // and resubmit the job on a fresh one.
                        Ok(Response::Error { .. }) | Err(_) => dead = true,
                        Ok(_) => i += 1,
                    }
                }
                // A dropped frame: the daemon never saw this job.
                // Count it as lost and move on (an at-least-once client
                // would resubmit; losing it keeps the script shorter).
                Err(TransportError::TimedOut) => i += 1,
                Err(_) => dead = true,
            }
        }
        if dead {
            let old = std::mem::replace(&mut faulty, fresh(conn_idx + 1));
            collect(&mut transcript, conn_idx, old);
            conn_idx += 1;
            assert!(conn_idx < MAX_RECONNECTS, "reconnect storm: {transcript:?}");
            // The job that hit the fault is retried on the new
            // connection (i was not advanced).
        }
    }
    collect(&mut transcript, conn_idx, faulty);

    // Final drain over a clean, unfaulted connection: whatever the
    // proxy did, the daemon must still be able to finish its work.
    let mut clean = SchedClient::new(connector.connect().expect("connect"), RetryConfig::default());
    let json = clean.drain().expect("drain after fault storm");
    (transcript, json)
}

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/daemon_fault_transcript.txt")
}

/// The fault-injected session is byte-reproducible — identical
/// transcript on a second run against a fresh daemon — and pinned
/// against the committed golden transcript. The daemon survives the
/// storm: the post-storm drain yields a well-formed report whose
/// completed jobs are exactly the cleanly-delivered submits.
#[test]
fn fault_injected_session_is_deterministic_and_pinned() {
    let run = || {
        let (connector, listener) = virtual_link(None);
        let daemon = spawn_daemon(
            listener,
            DaemonConfig {
                sched: sched_cfg(FAULT_JOBS as usize),
                overload: OverloadPolicy::default(),
            },
            1,
        );
        let out = fault_scenario(&connector);
        drop(connector);
        daemon.join().expect("daemon thread");
        out
    };

    let (transcript, json) = run();
    assert!(!transcript.is_empty());
    assert!(
        transcript.iter().any(|l| !l.ends_with("deliver")),
        "the smoke spec must actually injure something: {transcript:?}"
    );
    assert!(json.contains("\"policy\": \"ilp\""), "{json}");

    // Byte-reproducible: a fresh daemon, the same script, the same
    // seeds — the same transcript and the same final report.
    let (transcript2, json2) = run();
    assert_eq!(transcript, transcript2, "fault transcript must be deterministic");
    assert_eq!(json, json2, "post-storm report must be deterministic");

    // Pin against the committed golden file.
    let path = golden_path();
    let rendered = transcript.join("\n") + "\n";
    if std::env::var_os("GCS_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &rendered).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden transcript {} ({e}); run with GCS_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "fault transcript drifted from the golden file (GCS_UPDATE_GOLDEN=1 regenerates)"
    );
}
