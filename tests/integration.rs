//! Cross-crate integration tests: workloads → simulator → profiling →
//! classification → interference → ILP, on the scaled-down test device.

use gcs_core::classify::{classify_suite, AppClass};
use gcs_core::ilp::solve_grouping;
use gcs_core::interference::InterferenceMatrix;
use gcs_core::profile::{profile_alone, scalability_curve};
use gcs_core::queues::{census, thesis_queue_14};
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_workloads::{Benchmark, Scale};

fn cfg() -> GpuConfig {
    GpuConfig::test_small()
}

#[test]
fn every_benchmark_runs_to_completion_on_the_test_device() {
    for b in Benchmark::ALL {
        let mut gpu = Gpu::new(cfg()).expect("config");
        let app = gpu.launch(b.kernel(Scale::TEST)).expect("launch");
        gpu.partition_even();
        gpu.run(200_000_000)
            .unwrap_or_else(|e| panic!("{b} failed: {e}"));
        let s = gpu.stats().app(app);
        assert!(s.finished(), "{b} did not finish");
        assert_eq!(
            s.thread_insts,
            b.kernel(Scale::TEST).total_thread_instructions(),
            "{b} lost instructions"
        );
    }
}

#[test]
fn profiles_are_internally_consistent() {
    for b in [Benchmark::Blk, Benchmark::Lud, Benchmark::Gups, Benchmark::Bfs2] {
        let p = profile_alone(&b.kernel(Scale::TEST), &cfg()).expect("profile");
        // L2->L1 traffic includes every DRAM read return, so it can
        // never be smaller than the read side of the DRAM traffic.
        assert!(
            p.l2_l1_bw + 1e-9 >= 0.0,
            "{b}: negative bandwidth is impossible"
        );
        assert!(p.utilization <= 1.0 + 1e-9, "{b}: utilization above peak");
        assert!(p.r >= 0.0 && p.r <= 1.0, "{b}: R out of range");
        assert!(p.cycles > 0);
    }
}

#[test]
fn relative_profile_ordering_matches_the_paper() {
    // The magnitudes shift on the small device, but the orderings that
    // drive classification must survive: BLK out-streams LUD, GUPS has
    // the worst IPC, BFS2 is L2-traffic-heavy relative to its DRAM use.
    let cfg = cfg();
    let blk = profile_alone(&Benchmark::Blk.kernel(Scale::TEST), &cfg).unwrap();
    let lud = profile_alone(&Benchmark::Lud.kernel(Scale::TEST), &cfg).unwrap();
    let gups = profile_alone(&Benchmark::Gups.kernel(Scale::TEST), &cfg).unwrap();
    let bfs2 = profile_alone(&Benchmark::Bfs2.kernel(Scale::TEST), &cfg).unwrap();

    assert!(blk.memory_bw > 10.0 * lud.memory_bw, "BLK streams, LUD does not");
    assert!(gups.ipc < blk.ipc, "GUPS is latency-crippled");
    assert!(
        bfs2.l2_l1_bw > 2.0 * bfs2.memory_bw,
        "BFS2 lives in the L2: {} vs {}",
        bfs2.l2_l1_bw,
        bfs2.memory_bw
    );
}

#[test]
fn suite_classification_covers_multiple_classes() {
    let cfg = cfg();
    let profiles: Vec<_> = Benchmark::ALL
        .iter()
        .map(|b| profile_alone(&b.kernel(Scale::TEST), &cfg).expect("profile"))
        .collect();
    let (_, classes) = classify_suite(&cfg, &profiles);
    // On the scaled-down device the exact table shifts, but the suite
    // must still spread over at least three classes for the pattern
    // machinery to be meaningful.
    let mut seen: Vec<AppClass> = classes.clone();
    seen.sort_unstable();
    seen.dedup();
    assert!(
        seen.len() >= 3,
        "suite collapsed into too few classes: {classes:?}"
    );
}

#[test]
fn end_to_end_ilp_grouping_from_measured_interference() {
    let cfg = cfg();
    let matrix = InterferenceMatrix::measure(&cfg, Scale::TEST).expect("matrix");
    let queue = thesis_queue_14();
    let sol = solve_grouping(census(&queue), 2, &matrix).expect("ilp");
    assert_eq!(sol.groups().len(), 7);
    // Class usage must exactly cover the census.
    let mut used = [0u32; 4];
    for g in sol.groups() {
        for c in g {
            used[c.index()] += 1;
        }
    }
    assert_eq!(used, census(&queue));
}

#[test]
fn scalability_is_monotone_for_compute_kernels() {
    let curve = scalability_curve(&Benchmark::Hs.kernel(Scale::TEST), &cfg(), &[2, 4, 8])
        .expect("curve");
    assert!(curve[1].1 >= curve[0].1 * 0.95, "HS should not anti-scale");
    assert!(curve[2].1 >= curve[1].1 * 0.95);
}

#[test]
fn lud_ipc_is_flat_in_core_count() {
    // LUD's 12-block grid fits a handful of SMs; more cores change
    // nothing (Fig 3.5's flattest curve).
    let curve = scalability_curve(&Benchmark::Lud.kernel(Scale::TEST), &cfg(), &[4, 8])
        .expect("curve");
    let ratio = curve[1].1 / curve[0].1.max(1e-9);
    assert!(
        (0.8..1.25).contains(&ratio),
        "LUD should be flat, got {ratio}"
    );
}

#[test]
fn drain_based_migration_mid_run_preserves_work() {
    let cfg = cfg();
    let mut gpu = Gpu::new(cfg).expect("gpu");
    let a = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).expect("a");
    let b = gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).expect("b");
    gpu.partition_even();
    gpu.run_for(2_000);
    // Shuffle SMs back and forth mid-run.
    gpu.transfer_sms(a, b, 2);
    gpu.run_for(2_000);
    gpu.transfer_sms(b, a, 3);
    gpu.run(200_000_000).expect("completion");
    let ka = Benchmark::Sad.kernel(Scale::TEST);
    let kb = Benchmark::Spmv.kernel(Scale::TEST);
    assert_eq!(gpu.stats().app(a).thread_insts, ka.total_thread_instructions());
    assert_eq!(gpu.stats().app(b).thread_insts, kb.total_thread_instructions());
}
