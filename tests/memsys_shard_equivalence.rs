//! Memory-shard equivalence: phase-M stepping (sharded L2/DRAM slices)
//! must be bit-identical to the unsharded reference, at every memory
//! shard count, alone and combined with SM sharding.
//!
//! [`Gpu::set_mem_shards`] splits the L2 slices into `m` cells whose
//! per-slice work (L2 stage, DRAM scheduling, MSHR fills) runs per
//! shard, with responses and stats deltas folded back in a serial
//! boundary phase in the reference slice rotation. The contract is the
//! same as SM sharding's: a *pure* wall-clock optimization — every
//! [`SimStats`] counter, the final device cycle, every SMRA decision
//! and every recorded trace byte are exactly the `m = 1` values. This
//! suite pins that across dense-issue and latency-bound co-runs, SMRA
//! control, authored-trace replays, fault plans (including the
//! mid-run memory knobs, which must reset the sleep gates), the phase
//! profiler and the threaded executor — in both step modes, over the
//! m1/m2/m4 × s1/s2/s4 grid.

use std::sync::Arc;

use gcs_core::smra::{SmraAction, SmraController, SmraParams};
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::{Gpu, StepMode};
use gcs_sim::stats::SimStats;
use gcs_sim::FaultPlan;
use gcs_workloads::{phase_shift_trace, tensor_mix_trace, Benchmark, Scale};

const MAX_CYCLES: u64 = 50_000_000;

/// Memory shard counts: reference, even split, one-slice-per-shard.
const MEM_SHARDS: [u32; 3] = [1, 2, 4];

const MODES: [StepMode; 2] = [StepMode::Cycle, StepMode::EventHorizon];

/// The small test device, widened to four memory controllers so `m =
/// 4` is a real split (stock `test_small` has two slices and would
/// clamp).
fn cfg4() -> GpuConfig {
    GpuConfig {
        num_mem_ctrls: 4,
        ..GpuConfig::test_small()
    }
}

fn device(cfg: GpuConfig, mode: StepMode, sm_shards: u32, mem_shards: u32) -> Gpu {
    let mut gpu = Gpu::new(cfg).expect("device");
    gpu.set_step_mode(mode);
    gpu.set_shards(sm_shards);
    gpu.set_mem_shards(mem_shards);
    gpu
}

fn run_corun(a: Benchmark, b: Benchmark, mode: StepMode, s: u32, m: u32) -> (SimStats, u64) {
    let mut gpu = device(cfg4(), mode, s, m);
    gpu.launch(a.kernel(Scale::TEST)).expect("launch a");
    gpu.launch(b.kernel(Scale::TEST)).expect("launch b");
    gpu.partition_even();
    gpu.run(MAX_CYCLES).expect("co-run finishes");
    (gpu.stats().clone(), gpu.cycle())
}

#[test]
fn dense_issue_corun_is_bit_identical_over_the_shard_grid() {
    // Gups × Spmv: the memory-bound co-run class the sharding targets.
    for mode in MODES {
        let reference = run_corun(Benchmark::Gups, Benchmark::Spmv, mode, 1, 1);
        for s in [1u32, 2, 4] {
            for m in &MEM_SHARDS {
                assert_eq!(
                    reference,
                    run_corun(Benchmark::Gups, Benchmark::Spmv, mode, s, *m),
                    "dense co-run ({mode:?}) diverged at s{s}/m{m}"
                );
            }
        }
    }
}

#[test]
fn latency_bound_corun_is_bit_identical_over_the_shard_grid() {
    // Gups × Sad: long-latency compute against random misses — slices
    // spend most cycles idle, exercising the sleep gates rather than
    // the service path.
    for mode in MODES {
        let reference = run_corun(Benchmark::Gups, Benchmark::Sad, mode, 1, 1);
        for s in [1u32, 4] {
            for m in &MEM_SHARDS[1..] {
                assert_eq!(
                    reference,
                    run_corun(Benchmark::Gups, Benchmark::Sad, mode, s, *m),
                    "latency co-run ({mode:?}) diverged at s{s}/m{m}"
                );
            }
        }
    }
}

#[test]
fn alone_suite_is_bit_identical_across_mem_shards() {
    // Every workload in the suite, alone, both step modes, m1 vs m4.
    for mode in MODES {
        for bench in Benchmark::ALL {
            let run = |m: u32| {
                let mut gpu = device(cfg4(), mode, 1, m);
                gpu.launch(bench.kernel(Scale::TEST)).expect("launch");
                gpu.partition_even();
                gpu.run(MAX_CYCLES).expect("alone run finishes");
                (gpu.stats().clone(), gpu.cycle())
            };
            assert_eq!(
                run(1),
                run(4),
                "{bench:?} ({mode:?}): stats/cycle diverged at 4 mem shards"
            );
        }
    }
}

#[test]
fn smra_run_is_bit_identical_across_mem_shards() {
    let run = |mode: StepMode, s: u32, m: u32| -> (SimStats, u64, Vec<SmraAction>) {
        let mut gpu = device(cfg4(), mode, s, m);
        let a = gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("a");
        let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).expect("b");
        gpu.partition_even();
        let params = SmraParams {
            tc: 400, // small window: many controller invocations
            ..SmraParams::for_device(gpu.config().num_sms, 2)
        };
        let mut ctl = SmraController::new(params, vec![a, b], &gpu);
        ctl.run_to_completion(&mut gpu, MAX_CYCLES).expect("smra run");
        (gpu.stats().clone(), gpu.cycle(), ctl.actions().to_vec())
    };
    for mode in MODES {
        let (ref_stats, ref_cyc, ref_actions) = run(mode, 1, 1);
        for (s, m) in [(1u32, 2u32), (1, 4), (4, 4)] {
            let (stats, cyc, actions) = run(mode, s, m);
            assert_eq!(
                ref_actions, actions,
                "SMRA decision trace ({mode:?}) diverged at s{s}/m{m}"
            );
            assert_eq!(ref_cyc, cyc, "SMRA final cycle ({mode:?}) diverged at s{s}/m{m}");
            assert_eq!(ref_stats, stats, "SMRA SimStats ({mode:?}) diverged at s{s}/m{m}");
        }
    }
}

#[test]
fn authored_trace_replays_are_bit_identical_across_mem_shards() {
    let cfg = cfg4();
    let traces = [
        Arc::new(phase_shift_trace(&cfg)),
        Arc::new(tensor_mix_trace(&cfg)),
    ];
    for trace in &traces {
        for mode in MODES {
            let run = |m: u32| {
                let mut gpu = device(cfg.clone(), mode, 1, m);
                gpu.launch_traced(Arc::clone(trace)).expect("launch traced");
                gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("launch co-runner");
                gpu.partition_even();
                gpu.run(MAX_CYCLES).expect("replay co-run finishes");
                (gpu.stats().clone(), gpu.cycle())
            };
            let reference = run(1);
            for m in &MEM_SHARDS[1..] {
                assert_eq!(
                    reference,
                    run(*m),
                    "{} replay ({mode:?}) diverged at {m} mem shards",
                    trace.kernel_desc().name
                );
            }
        }
    }
}

#[test]
fn faulted_runs_are_bit_identical_across_mem_shards() {
    // The memory fault windows drive `set_extra_latency`/`set_mshr_cap`
    // mid-run — exactly the knobs that invalidate the phase-M sleep
    // gates. A stale gate would skip a tick the reference performs and
    // diverge here.
    let plan = || {
        FaultPlan::new()
            .disable_sm(2_000, 0)
            .mem_latency_window(5_000, 20_000, 40, 80)
            .mshr_window(8_000, 25_000, 2)
            .enable_sm(30_000, 0)
    };
    for mode in MODES {
        for bench in [Benchmark::Gups, Benchmark::Spmv] {
            let run = |s: u32, m: u32| {
                let mut gpu = device(cfg4(), mode, s, m);
                gpu.install_fault_plan(plan()).expect("valid plan");
                gpu.launch(bench.kernel(Scale::TEST)).expect("launch");
                gpu.partition_even();
                gpu.run(MAX_CYCLES).expect("faulted run finishes");
                (gpu.stats().clone(), gpu.cycle())
            };
            let reference = run(1, 1);
            for (s, m) in [(1u32, 2u32), (1, 4), (4, 2), (4, 4)] {
                assert_eq!(
                    reference,
                    run(s, m),
                    "{bench:?} faulted run ({mode:?}) diverged at s{s}/m{m}"
                );
            }
        }
    }
}

#[test]
fn profiler_phase_totals_are_mem_shard_invariant_and_account_every_cycle() {
    // Phase-M work must land under `l2`/`dram`, never `idle`: the
    // classifier reads `is_idle`/`any_dram_queued`, which dispatch over
    // the cells, so `sum(phases) == cycles` has to keep holding.
    let run = |s: u32, m: u32| {
        let mut gpu = device(cfg4(), StepMode::EventHorizon, s, m);
        gpu.set_profiling(true);
        gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("launch a");
        gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).expect("launch b");
        gpu.partition_even();
        gpu.run(MAX_CYCLES).expect("profiled co-run finishes");
        let phases = gpu.phase_cycles().expect("profiling was on");
        (gpu.stats().clone(), gpu.cycle(), phases)
    };
    let (ref_stats, ref_cyc, ref_phases) = run(1, 1);
    assert_eq!(
        ref_phases.total(),
        ref_cyc,
        "reference profiler lost cycles: {ref_phases:?}"
    );
    for (s, m) in [(1u32, 2u32), (1, 4), (4, 4)] {
        let (stats, cyc, phases) = run(s, m);
        assert_eq!(
            phases.total(),
            cyc,
            "profiler lost cycles at s{s}/m{m}: {phases:?}"
        );
        assert_eq!(ref_phases, phases, "phase totals diverged at s{s}/m{m}");
        assert_eq!(ref_cyc, cyc, "profiled final cycle diverged at s{s}/m{m}");
        assert_eq!(ref_stats, stats, "profiled SimStats diverged at s{s}/m{m}");
    }
}

#[test]
fn recording_runs_ignore_mem_sharding_and_produce_identical_traces() {
    let record = |m: u32| {
        let mut gpu = device(cfg4(), StepMode::EventHorizon, 1, m);
        let a = gpu.launch(Benchmark::Blk.kernel(Scale::TEST)).expect("launch");
        gpu.enable_trace_recording(a).expect("recording");
        gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("co-runner");
        gpu.partition_even();
        gpu.run(MAX_CYCLES).expect("recording run finishes");
        let trace = gpu.take_trace(a).expect("recording was on");
        (trace.encode(), gpu.stats().clone(), gpu.cycle())
    };
    let reference = record(1);
    for m in &MEM_SHARDS[1..] {
        assert_eq!(
            reference,
            record(*m),
            "recording run diverged at {m} mem shards"
        );
    }
}

#[test]
fn threaded_cells_match_inline_cells_and_the_reference() {
    // Worker threads tick the memory shards through the epoch slots;
    // the inline (SeqExec / workers = 1) path ticks them in the
    // coordinator. Both must equal the unsharded reference.
    let run = |s: u32, m: u32, workers: u32| {
        let mut gpu = device(cfg4(), StepMode::EventHorizon, s, m);
        gpu.set_shard_workers(workers);
        gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("launch a");
        gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).expect("launch b");
        gpu.partition_even();
        gpu.run(MAX_CYCLES).expect("threaded co-run finishes");
        (gpu.stats().clone(), gpu.cycle())
    };
    let reference = run(1, 1, 1);
    for (s, m, workers) in [(4u32, 4u32, 1u32), (4, 4, 2), (4, 2, 4), (2, 4, 2)] {
        assert_eq!(
            reference,
            run(s, m, workers),
            "run diverged at s{s}/m{m} with {workers} workers"
        );
    }
}

#[test]
fn mem_shard_setting_is_clamped_and_reported() {
    let mut gpu = Gpu::new(cfg4()).expect("device");
    assert_eq!(gpu.mem_shards(), 1, "memory sharding must default off");
    gpu.set_mem_shards(0);
    assert_eq!(gpu.mem_shards(), 1);
    gpu.set_mem_shards(1_000);
    assert_eq!(
        gpu.mem_shards(),
        gpu.config().num_mem_ctrls,
        "memory shard count clamps to the slice count"
    );
    gpu.set_mem_shards(2);
    assert_eq!(gpu.mem_shards(), 2);
}
