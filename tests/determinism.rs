//! Determinism guarantee of the parallel sweep engine.
//!
//! The engine's contract: for any thread count, the assembled results
//! are **bit-identical** to the sequential path — every simulation job
//! is a pure function of its inputs (per-SM RNGs are seeded by SM index
//! alone), and results are keyed by job index rather than completion
//! order. This suite proves the contract at tiny scale by sweeping the
//! same benchmark subset at 1, 2 and 8 threads, twice each, and
//! comparing every matrix entry and profile field as raw bit patterns.

use gcs_core::interference::InterferenceMatrix;
use gcs_core::profile::AppProfile;
use gcs_core::sweep::SweepEngine;
use gcs_sim::config::GpuConfig;
use gcs_workloads::{Benchmark, Scale};

/// One representative per class (M, MC, C, A): 4 alone runs + 10 pair
/// co-runs per sweep keeps each run in unit-test territory.
const SUITE: [Benchmark; 4] = [
    Benchmark::Blk,
    Benchmark::Fft,
    Benchmark::Spmv,
    Benchmark::Sad,
];

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn sweep(threads: usize) -> (SweepEngine, InterferenceMatrix, Vec<AppProfile>) {
    let engine = SweepEngine::new(threads);
    let cfg = GpuConfig::test_small();
    let matrix =
        InterferenceMatrix::measure_suite_with(&engine, &cfg, Scale::TEST, &SUITE).unwrap();
    let profiles = engine.profile_suite(&cfg, Scale::TEST, &SUITE).unwrap();
    (engine, matrix, profiles)
}

/// Matrix entries as exact IEEE-754 bit patterns.
fn matrix_bits(m: &InterferenceMatrix) -> Vec<u64> {
    m.entries()
        .iter()
        .flat_map(|row| row.iter().map(|v| v.to_bits()))
        .collect()
}

/// Every profile field, floats as bit patterns.
fn profile_bits(p: &AppProfile) -> (String, [u64; 5], u64, u64, u32) {
    (
        p.name.clone(),
        [
            p.memory_bw.to_bits(),
            p.l2_l1_bw.to_bits(),
            p.ipc.to_bits(),
            p.r.to_bits(),
            p.utilization.to_bits(),
        ],
        p.cycles,
        p.thread_insts,
        p.num_sms,
    )
}

#[test]
fn parallel_sweep_is_bit_identical_across_thread_counts_and_runs() {
    let (_, m_ref, p_ref) = sweep(1);
    for threads in THREAD_COUNTS {
        for run in 0..2 {
            let (_, m, p) = sweep(threads);
            assert_eq!(
                matrix_bits(&m_ref),
                matrix_bits(&m),
                "matrix diverged at threads={threads} run={run}\nref:\n{m_ref}\ngot:\n{m}"
            );
            assert_eq!(p_ref.len(), p.len());
            for (a, b) in p_ref.iter().zip(&p) {
                assert_eq!(
                    profile_bits(a),
                    profile_bits(b),
                    "profile {} diverged at threads={threads} run={run}",
                    a.name
                );
            }
        }
    }
}

#[test]
fn sweep_job_accounting_is_thread_count_invariant() {
    let mut totals = Vec::new();
    for threads in THREAD_COUNTS {
        let (engine, _, _) = sweep(threads);
        let s = engine.stats();
        assert_eq!(
            s.jobs_total,
            s.jobs_simulated + s.jobs_cached,
            "accounting identity broken at {threads} threads: {s:?}"
        );
        // 4 alone profiles + 10 pairs; profile_suite() afterwards hits
        // the memo for all 4.
        assert_eq!(s.jobs_total, 18, "unexpected job count: {s:?}");
        assert_eq!(s.jobs_simulated, 14, "unexpected simulation count: {s:?}");
        assert!(
            s.max_in_flight <= threads.max(1),
            "{} jobs in flight with {threads} workers",
            s.max_in_flight
        );
        totals.push((s.jobs_total, s.jobs_simulated, s.sim_cycles));
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "job/cycle accounting depends on thread count: {totals:?}"
    );
}

/// A traced workload through the engine is as thread-count stable as a
/// synthetic one: the replayed profile's bits never move with the
/// worker count.
#[test]
fn traced_workload_profile_is_thread_count_stable() {
    use gcs_core::sweep::Workload;
    use std::sync::Arc;

    let cfg = GpuConfig::test_small();
    let workload = Workload::Trace(Arc::new(gcs_workloads::phase_shift_trace(&cfg)));
    let profile = |threads: usize| {
        SweepEngine::new(threads)
            .profile_workload(&cfg, Scale::TEST, &workload, cfg.num_sms)
            .unwrap()
    };
    let reference = profile(1);
    assert_eq!(reference.name, "TRACE_PHASE");
    for threads in THREAD_COUNTS {
        assert_eq!(
            profile_bits(&reference),
            profile_bits(&profile(threads)),
            "traced profile diverged at {threads} threads"
        );
    }
}
