//! Record → replay bit-identity harness for the trace subsystem.
//!
//! The headline invariant: every trace recorded from a synthetic
//! kernel replays **bit-identically** — same `SimStats`, same cycle
//! count, same SMRA action trace — whether replayed alone, inside a
//! co-run next to a synthetic partner, in either step mode, or through
//! the sweep engine at any worker thread count. The memo cache keys
//! traced jobs by content fingerprint, so same-name different-content
//! traces can never collide.

use std::collections::BTreeMap;
use std::sync::Arc;

use gcs_core::profile::{profile_with_sms_phases, AppProfile, PROFILE_MAX_CYCLES};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy, Pipeline, RunConfig};
use gcs_core::smra::{SmraAction, SmraController, SmraParams};
use gcs_core::sweep::{SweepEngine, Workload};
use gcs_core::InterferenceMatrix;
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::{Gpu, StepMode};
use gcs_sim::{KernelTrace, SimStats};
use gcs_workloads::{phase_shift_trace, tensor_mix_trace, Benchmark, Scale};

/// Records `bench` alone on every SM of the test device (the profiling
/// context), returning the trace plus the recording run's outcome.
fn record_alone(bench: Benchmark) -> (KernelTrace, u64, SimStats) {
    let cfg = GpuConfig::test_small();
    let mut gpu = Gpu::new(cfg.clone()).unwrap();
    let app = gpu.launch(bench.kernel(Scale::TEST)).unwrap();
    gpu.enable_trace_recording(app).unwrap();
    let ids: Vec<u32> = (0..cfg.num_sms).collect();
    gpu.assign_sms(app, &ids);
    gpu.run(PROFILE_MAX_CYCLES).unwrap();
    let cycles = gpu.cycle();
    let stats = gpu.stats().clone();
    let trace = gpu.take_trace(app).unwrap();
    (trace, cycles, stats)
}

/// Every profile field, floats as bit patterns.
fn profile_bits(p: &AppProfile) -> (String, [u64; 5], u64, u64, u32) {
    (
        p.name.clone(),
        [
            p.memory_bw.to_bits(),
            p.l2_l1_bw.to_bits(),
            p.ipc.to_bits(),
            p.r.to_bits(),
            p.utilization.to_bits(),
        ],
        p.cycles,
        p.thread_insts,
        p.num_sms,
    )
}

/// Golden pin over the whole suite: each of the 14 synthetic kernels
/// records, round-trips through the wire format, and replays with the
/// recording run's exact stats and cycle count — in both step modes.
#[test]
fn all_fourteen_kernels_replay_bit_identically() {
    let cfg = GpuConfig::test_small();
    for &bench in &Benchmark::ALL {
        let (trace, cycles, stats) = record_alone(bench);
        let trace = Arc::new(KernelTrace::decode(&trace.encode()).expect("wire round trip"));
        for mode in [StepMode::Cycle, StepMode::EventHorizon] {
            let mut gpu = Gpu::new(cfg.clone()).unwrap();
            gpu.set_step_mode(mode);
            gpu.launch_traced(Arc::clone(&trace)).unwrap();
            let ids: Vec<u32> = (0..cfg.num_sms).collect();
            gpu.assign_sms(gcs_sim::AppId(0), &ids);
            gpu.run(PROFILE_MAX_CYCLES).unwrap();
            assert_eq!(gpu.cycle(), cycles, "{bench:?} {mode:?}: cycle count diverges");
            assert_eq!(*gpu.stats(), stats, "{bench:?} {mode:?}: stats diverge");
        }
    }
}

/// Traced profiles through the sweep engine are bit-identical at 1, 2
/// and 8 worker threads, and match the synthetic kernel's profile
/// exactly (the trace was recorded in the same profiling context).
#[test]
fn traced_sweep_is_bit_identical_across_thread_counts() {
    let cfg = GpuConfig::test_small();
    let traces: Vec<Arc<KernelTrace>> = Benchmark::ALL
        .iter()
        .map(|&b| Arc::new(record_alone(b).0))
        .collect();
    let workloads: Vec<Workload> = traces.iter().map(|t| Workload::Trace(Arc::clone(t))).collect();
    let sweep = |threads: usize| -> Vec<AppProfile> {
        let engine = SweepEngine::new(threads);
        engine
            .run_parallel(workloads.len(), |i| {
                engine.profile_workload(&cfg, Scale::TEST, &workloads[i], cfg.num_sms)
            })
            .unwrap()
    };
    let reference = sweep(1);
    for (i, &bench) in Benchmark::ALL.iter().enumerate() {
        let (synthetic, _) =
            profile_with_sms_phases(&bench.kernel(Scale::TEST), &cfg, cfg.num_sms, false).unwrap();
        assert_eq!(
            profile_bits(&reference[i]),
            profile_bits(&synthetic),
            "{bench:?}: traced profile diverges from synthetic"
        );
    }
    for threads in [2usize, 8] {
        let got = sweep(threads);
        for (a, b) in reference.iter().zip(&got) {
            assert_eq!(
                profile_bits(a),
                profile_bits(b),
                "traced profile {} diverged at {threads} threads",
                a.name
            );
        }
    }
}

/// Even co-run: record member A while it shares the device with a
/// synthetic partner, then replay traced-A next to the same partner.
/// Device outcome is bit-identical.
#[test]
fn even_corun_with_traced_member_is_bit_identical() {
    let run = |traced: Option<Arc<KernelTrace>>| {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = match &traced {
            Some(t) => gpu.launch_traced(Arc::clone(t)).unwrap(),
            None => {
                let a = gpu.launch(Benchmark::Blk.kernel(Scale::TEST)).unwrap();
                gpu.enable_trace_recording(a).unwrap();
                a
            }
        };
        gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).unwrap();
        gpu.partition_even();
        gpu.run(PROFILE_MAX_CYCLES).unwrap();
        let trace = gpu.take_trace(a);
        (gpu.cycle(), gpu.stats().clone(), trace)
    };
    let (c1, s1, trace) = run(None);
    let trace = Arc::new(trace.expect("recording was on"));
    let (c2, s2, _) = run(Some(trace));
    assert_eq!(c1, c2, "even co-run cycles diverge under replay");
    assert_eq!(s1, s2, "even co-run stats diverge under replay");
}

/// SMRA co-run: the dynamic controller sees identical signals from a
/// replayed member, so its entire action trace — every move, hold and
/// revert — matches the recording run, along with stats and cycles.
#[test]
fn smra_corun_with_traced_member_replays_identical_actions() {
    let run = |traced: Option<Arc<KernelTrace>>| {
        let mut gpu = Gpu::new(GpuConfig::test_small()).unwrap();
        let a = match &traced {
            Some(t) => gpu.launch_traced(Arc::clone(t)).unwrap(),
            None => {
                let a = gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).unwrap();
                gpu.enable_trace_recording(a).unwrap();
                a
            }
        };
        let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).unwrap();
        gpu.partition_even();
        let params = SmraParams::for_device(8, 2);
        let mut ctl = SmraController::new(params, vec![a, b], &gpu);
        ctl.run_to_completion(&mut gpu, PROFILE_MAX_CYCLES).unwrap();
        let actions: Vec<SmraAction> = ctl.actions().to_vec();
        let trace = gpu.take_trace(a);
        (gpu.cycle(), gpu.stats().clone(), actions, trace)
    };
    let (c1, s1, a1, trace) = run(None);
    let trace = Arc::new(trace.expect("recording was on"));
    let (c2, s2, a2, _) = run(Some(trace));
    assert_eq!(c1, c2, "SMRA co-run cycles diverge under replay");
    assert_eq!(s1, s2, "SMRA co-run stats diverge under replay");
    assert_eq!(a1, a2, "SMRA action trace diverges under replay");
}

/// Memo-cache correctness: two *different* traces sharing a name get
/// distinct content fingerprints, therefore distinct cache keys — the
/// second can never be served the first's result.
#[test]
fn same_name_different_traces_never_collide_in_cache() {
    let (mut t1, _, _) = record_alone(Benchmark::Blk);
    let (mut t2, _, _) = record_alone(Benchmark::Gups);
    t1.meta.name = "SAME".to_string();
    t2.meta.name = "SAME".to_string();
    assert_ne!(t1.fingerprint(), t2.fingerprint(), "fingerprint must see content");

    let cfg = GpuConfig::test_small();
    let engine = SweepEngine::sequential();
    let p1 = engine
        .profile_workload(&cfg, Scale::TEST, &Workload::Trace(Arc::new(t1)), cfg.num_sms)
        .unwrap();
    let p2 = engine
        .profile_workload(&cfg, Scale::TEST, &Workload::Trace(Arc::new(t2)), cfg.num_sms)
        .unwrap();
    let s = engine.stats();
    assert_eq!(s.jobs_total, 2);
    assert_eq!(
        s.jobs_simulated, 2,
        "same-name traces collided in the memo cache: {s:?}"
    );
    assert_eq!(s.jobs_cached, 0);
    assert_ne!(
        (p1.cycles, p1.thread_insts),
        (p2.cycles, p2.thread_insts),
        "distinct traces produced identical outcomes — collision suspected"
    );
}

/// The two hand-authored traces flow end-to-end: bound into the
/// pipeline they are profiled, classified, grouped and co-run like any
/// suite member, and the whole report is thread-count stable.
#[test]
fn authored_traces_run_end_to_end_through_pipeline() {
    let cfg = GpuConfig::test_small();
    let bindings: BTreeMap<Benchmark, Arc<KernelTrace>> = BTreeMap::from([
        (Benchmark::Jpeg, Arc::new(phase_shift_trace(&cfg))),
        (Benchmark::Ray, Arc::new(tensor_mix_trace(&cfg))),
    ]);
    let build = |threads: usize| {
        let run_cfg = RunConfig {
            gpu: GpuConfig::test_small(),
            scale: Scale::TEST,
            concurrency: 2,
        };
        Pipeline::with_matrix_engine_and_bindings(
            run_cfg,
            InterferenceMatrix::synthetic_paper_shape(),
            Arc::new(SweepEngine::new(threads)),
            bindings.clone(),
        )
        .unwrap()
    };
    let run = |threads: usize| {
        let mut p = build(threads);
        // Bound slots carry the trace's profile and a real class.
        assert_eq!(p.profile(Benchmark::Jpeg).name, "TRACE_PHASE");
        assert_eq!(p.profile(Benchmark::Ray).name, "TRACE_TENSOR");
        let _ = p.class_of(Benchmark::Jpeg);
        let queue = [
            Benchmark::Blk,
            Benchmark::Jpeg,
            Benchmark::Gups,
            Benchmark::Ray,
        ];
        let ilp = p
            .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Smra)
            .unwrap();
        assert!(ilp.total_cycles > 0);
        assert!(ilp.device_throughput > 0.0);
        ilp.device_throughput.to_bits()
    };
    assert_eq!(run(1), run(8), "pipeline report depends on thread count");
}
