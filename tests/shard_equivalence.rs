//! Shard-count equivalence: sharded-SM stepping must be bit-identical
//! to the unsharded reference, at every shard count.
//!
//! [`Gpu::set_shards`] splits the SM array into `k` cells whose
//! SM-local work (issue preparation, L1 probes, completion delivery)
//! runs per shard, with every access to shared state — L2/MSHR
//! admission, DRAM, block dispatch — replayed through a serial merge in
//! the reference rotation order. The engine's contract is that this is
//! *purely* a wall-clock optimization: every [`SimStats`] counter, the
//! final device cycle, every SMRA decision and every recorded trace
//! byte are exactly the `k = 1` values. This suite pins that contract
//! across the 14-workload suite alone, an Even co-run, an
//! SMRA-controlled run, authored-trace replays, fault plans, the phase
//! profiler, a multi-issue device and the threaded executor — in both
//! step modes, at shard counts 1, 2 and 4.

use std::sync::Arc;

use gcs_core::smra::{SmraAction, SmraController, SmraParams};
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::{Gpu, StepMode};
use gcs_sim::stats::SimStats;
use gcs_sim::{FaultPlan, KernelTrace};
use gcs_workloads::{phase_shift_trace, tensor_mix_trace, Benchmark, Scale};

const MAX_CYCLES: u64 = 50_000_000;

/// The pinned shard counts: reference, even split, and a split finer
/// than the per-app partitions of a two-app Even co-run.
const SHARDS: [u32; 3] = [1, 2, 4];

const MODES: [StepMode; 2] = [StepMode::Cycle, StepMode::EventHorizon];

fn device(cfg: GpuConfig, mode: StepMode, shards: u32) -> Gpu {
    let mut gpu = Gpu::new(cfg).expect("device");
    gpu.set_step_mode(mode);
    gpu.set_shards(shards);
    gpu
}

fn run_alone(bench: Benchmark, mode: StepMode, shards: u32) -> (SimStats, u64) {
    let mut gpu = device(GpuConfig::test_small(), mode, shards);
    gpu.launch(bench.kernel(Scale::TEST)).expect("launch");
    gpu.partition_even();
    gpu.run(MAX_CYCLES).expect("alone run finishes");
    (gpu.stats().clone(), gpu.cycle())
}

fn run_even_corun(mode: StepMode, shards: u32) -> (SimStats, u64) {
    let mut gpu = device(GpuConfig::test_small(), mode, shards);
    gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("launch a");
    gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).expect("launch b");
    gpu.partition_even();
    gpu.run(MAX_CYCLES).expect("co-run finishes");
    (gpu.stats().clone(), gpu.cycle())
}

fn run_smra(mode: StepMode, shards: u32) -> (SimStats, u64, Vec<SmraAction>) {
    let mut gpu = device(GpuConfig::test_small(), mode, shards);
    let a = gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("a");
    let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).expect("b");
    gpu.partition_even();
    let params = SmraParams {
        tc: 400, // small window: many controller invocations
        ..SmraParams::for_device(gpu.config().num_sms, 2)
    };
    let mut ctl = SmraController::new(params, vec![a, b], &gpu);
    ctl.run_to_completion(&mut gpu, MAX_CYCLES).expect("smra run");
    (gpu.stats().clone(), gpu.cycle(), ctl.actions().to_vec())
}

fn run_replay(trace: &Arc<KernelTrace>, mode: StepMode, shards: u32) -> (SimStats, u64) {
    let mut gpu = device(GpuConfig::test_small(), mode, shards);
    gpu.launch_traced(Arc::clone(trace)).expect("launch traced");
    gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("launch co-runner");
    gpu.partition_even();
    gpu.run(MAX_CYCLES).expect("replay co-run finishes");
    (gpu.stats().clone(), gpu.cycle())
}

#[test]
fn alone_runs_are_bit_identical_across_shard_counts() {
    for mode in MODES {
        for bench in Benchmark::ALL {
            let reference = run_alone(bench, mode, 1);
            for shards in &SHARDS[1..] {
                assert_eq!(
                    reference,
                    run_alone(bench, mode, *shards),
                    "{bench:?} ({mode:?}): stats/cycle diverged at {shards} shards"
                );
            }
        }
    }
}

#[test]
fn even_corun_is_bit_identical_across_shard_counts() {
    for mode in MODES {
        let reference = run_even_corun(mode, 1);
        for shards in &SHARDS[1..] {
            assert_eq!(
                reference,
                run_even_corun(mode, *shards),
                "even co-run ({mode:?}) diverged at {shards} shards"
            );
        }
    }
}

#[test]
fn smra_run_is_bit_identical_across_shard_counts() {
    for mode in MODES {
        let (ref_stats, ref_cyc, ref_actions) = run_smra(mode, 1);
        for shards in &SHARDS[1..] {
            let (stats, cyc, actions) = run_smra(mode, *shards);
            assert_eq!(
                ref_actions, actions,
                "SMRA decision trace ({mode:?}) diverged at {shards} shards: \
                 the controller observed different samples"
            );
            assert_eq!(ref_cyc, cyc, "SMRA final cycle ({mode:?}) diverged at {shards} shards");
            assert_eq!(ref_stats, stats, "SMRA SimStats ({mode:?}) diverged at {shards} shards");
        }
    }
}

#[test]
fn authored_trace_replays_are_bit_identical_across_shard_counts() {
    let cfg = GpuConfig::test_small();
    let traces = [
        Arc::new(phase_shift_trace(&cfg)),
        Arc::new(tensor_mix_trace(&cfg)),
    ];
    for trace in &traces {
        for mode in MODES {
            let reference = run_replay(trace, mode, 1);
            for shards in &SHARDS[1..] {
                assert_eq!(
                    reference,
                    run_replay(trace, mode, *shards),
                    "{} replay ({mode:?}) diverged at {shards} shards",
                    trace.kernel_desc().name
                );
            }
        }
    }
}

#[test]
fn faulted_runs_are_bit_identical_across_shard_counts() {
    // All three fault kinds, including a drain-based disable that must
    // land inside the owning shard and a recovery handed back mid-run.
    let plan = || {
        FaultPlan::new()
            .disable_sm(2_000, 0)
            .mem_latency_window(5_000, 20_000, 40, 80)
            .mshr_window(8_000, 25_000, 2)
            .enable_sm(30_000, 0)
    };
    for mode in MODES {
        for bench in [Benchmark::Gups, Benchmark::Spmv] {
            let run = |shards: u32| {
                let mut gpu = device(GpuConfig::test_small(), mode, shards);
                gpu.install_fault_plan(plan()).expect("valid plan");
                gpu.launch(bench.kernel(Scale::TEST)).expect("launch");
                gpu.partition_even();
                gpu.run(MAX_CYCLES).expect("faulted run finishes");
                (gpu.stats().clone(), gpu.cycle())
            };
            let reference = run(1);
            for shards in &SHARDS[1..] {
                assert_eq!(
                    reference,
                    run(*shards),
                    "{bench:?} faulted run ({mode:?}) diverged at {shards} shards"
                );
            }
        }
    }
}

#[test]
fn profiler_phase_totals_are_shard_invariant_and_account_every_cycle() {
    let run = |shards: u32| {
        let mut gpu = device(GpuConfig::test_small(), StepMode::EventHorizon, shards);
        gpu.set_profiling(true);
        gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("launch a");
        gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).expect("launch b");
        gpu.partition_even();
        gpu.run(MAX_CYCLES).expect("profiled co-run finishes");
        let phases = gpu.phase_cycles().expect("profiling was on");
        (gpu.stats().clone(), gpu.cycle(), phases)
    };
    let (ref_stats, ref_cyc, ref_phases) = run(1);
    assert_eq!(
        ref_phases.total(),
        ref_cyc,
        "reference profiler lost cycles: {ref_phases:?}"
    );
    for shards in &SHARDS[1..] {
        let (stats, cyc, phases) = run(*shards);
        assert_eq!(
            phases.total(),
            cyc,
            "profiler lost cycles at {shards} shards: {phases:?}"
        );
        assert_eq!(ref_phases, phases, "phase totals diverged at {shards} shards");
        assert_eq!(ref_cyc, cyc, "profiled final cycle diverged at {shards} shards");
        assert_eq!(ref_stats, stats, "profiled SimStats diverged at {shards} shards");
    }
}

#[test]
fn recording_runs_ignore_sharding_and_produce_identical_traces() {
    // Trace recording interns warp groups in first-touch order, which
    // is inherently cross-SM order-sensitive; a recording run therefore
    // always takes the reference path. The recorded bytes — and the
    // recording run's own stats — must not move with the shard setting.
    let record = |shards: u32| {
        let mut gpu = device(GpuConfig::test_small(), StepMode::EventHorizon, shards);
        let a = gpu.launch(Benchmark::Blk.kernel(Scale::TEST)).expect("launch");
        gpu.enable_trace_recording(a).expect("recording");
        gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("co-runner");
        gpu.partition_even();
        gpu.run(MAX_CYCLES).expect("recording run finishes");
        let trace = gpu.take_trace(a).expect("recording was on");
        (trace.encode(), gpu.stats().clone(), gpu.cycle())
    };
    let reference = record(1);
    for shards in &SHARDS[1..] {
        assert_eq!(
            reference,
            record(*shards),
            "recording run diverged at {shards} shards"
        );
    }
}

#[test]
fn multi_issue_device_is_bit_identical_across_shard_counts() {
    // issue_per_sm > 1 exercises the suspended-access continuation: a
    // shard-local prepare stops at the first coupled access and the
    // serial merge must finish the SM's remaining issue budget against
    // the live memory system.
    let cfg = GpuConfig {
        issue_per_sm: 2,
        ..GpuConfig::test_small()
    };
    for mode in MODES {
        let run = |shards: u32| {
            let mut gpu = device(cfg.clone(), mode, shards);
            gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("launch a");
            gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).expect("launch b");
            gpu.partition_even();
            gpu.run(MAX_CYCLES).expect("multi-issue co-run finishes");
            (gpu.stats().clone(), gpu.cycle())
        };
        let reference = run(1);
        for shards in &SHARDS[1..] {
            assert_eq!(
                reference,
                run(*shards),
                "multi-issue co-run ({mode:?}) diverged at {shards} shards"
            );
        }
    }
}

#[test]
fn threaded_executor_is_bit_identical_to_reference() {
    let run = |shards: u32, workers: u32| {
        let mut gpu = device(GpuConfig::test_small(), StepMode::EventHorizon, shards);
        gpu.set_shard_workers(workers);
        gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("launch a");
        gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).expect("launch b");
        gpu.partition_even();
        gpu.run(MAX_CYCLES).expect("threaded co-run finishes");
        (gpu.stats().clone(), gpu.cycle())
    };
    let reference = run(1, 1);
    for (shards, workers) in [(4, 2), (4, 4), (2, 2)] {
        assert_eq!(
            reference,
            run(shards, workers),
            "threaded run diverged at {shards} shards / {workers} workers"
        );
    }
}

#[test]
fn shard_setting_is_clamped_and_reported() {
    let mut gpu = Gpu::new(GpuConfig::test_small()).expect("device");
    assert_eq!(gpu.shards(), 1, "sharding must default off");
    gpu.set_shards(0);
    assert_eq!(gpu.shards(), 1);
    gpu.set_shards(1_000);
    assert_eq!(
        gpu.shards(),
        gpu.config().num_sms,
        "shard count clamps to the SM count"
    );
    let plan = gpu.shard_plan();
    let mut seen = 0u32;
    for (base, len) in plan.ranges() {
        assert_eq!(base, seen, "shard ranges must tile the SM ids in order");
        seen += len;
    }
    assert_eq!(seen, gpu.config().num_sms);
}
