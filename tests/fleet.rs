//! Integration pins for the heterogeneous fleet allocator
//! (`gcs_fleet`).
//!
//! The load-bearing guarantees:
//!
//! * **Degenerate equivalence** — a homogeneous 1-device
//!   [`FleetPolicy`] run through [`OnlineScheduler`] renders the exact
//!   same report bytes as a plain `IlpEpoch` run. The fleet path is
//!   a strict generalization of the single-GPU scheduler, not a fork.
//! * **Budget conservation & monotonicity** — per-device granted SM
//!   budgets never exceed capacity, and adding a device never lowers
//!   the predicted fleet STP.
//! * **Thread-count determinism** — [`run_fleet`] report JSON is
//!   byte-identical on 1, 2 and 8 sweep threads.
//! * **Warm replay** — a second run against the same cache directory
//!   simulates zero new jobs.
//! * **Fleet beats FCFS** — marginal-gain budgeting on a heterogeneous
//!   3-device fleet beats the whole-device FCFS baseline on
//!   cross-device STP.

use std::sync::Arc;

use gcs_core::interference::InterferenceMatrix;
use gcs_core::runner::{AllocationPolicy, Pipeline, RunConfig};
use gcs_core::SweepEngine;
use gcs_fleet::{
    allocate, run_fleet, DeviceProfile, FleetMode, FleetPolicy, FleetPredictor, FleetRunConfig,
    FleetSpec,
};
use gcs_sched::{Job, OnlineScheduler, Policy, PolicyKind, SchedConfig};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{ArrivalTrace, Benchmark, Scale};

/// Small, fast census for TEST-scale simulation.
const POOL: [Benchmark; 3] = [Benchmark::Gups, Benchmark::Hs, Benchmark::Lud];

fn run_config(concurrency: u32) -> RunConfig {
    RunConfig {
        gpu: GpuConfig::test_small(),
        scale: Scale::TEST,
        concurrency,
    }
}

fn pipeline_with_engine(concurrency: u32, engine: Arc<SweepEngine>) -> Pipeline {
    Pipeline::with_matrix_and_engine(
        run_config(concurrency),
        InterferenceMatrix::synthetic_paper_shape(),
        engine,
    )
    .expect("pipeline")
}

/// The heterogeneous 3-device fleet the acceptance pins use:
/// `test_small` at 8, 15 and 30 SMs.
fn hetero3() -> FleetSpec {
    FleetSpec::new(vec![
        DeviceProfile { id: "gpu8".into(), num_sms: 8 },
        DeviceProfile { id: "gpu15".into(), num_sms: 15 },
        DeviceProfile { id: "gpu30".into(), num_sms: 30 },
    ])
    .expect("spec")
}

fn wave_trace() -> ArrivalTrace {
    ArrivalTrace::waves(&POOL, 3, 5, 40_000, 42)
}

fn jobs(benches: &[Benchmark]) -> Vec<Job> {
    benches
        .iter()
        .enumerate()
        .map(|(id, &bench)| Job { id, bench, arrival: 0 })
        .collect()
}

/// Homogeneous 1-device fleet == the single-GPU scheduler, down to the
/// report bytes (policy name included).
#[test]
fn one_device_fleet_reproduces_single_gpu_report_bytes() {
    let trace = ArrivalTrace::poisson(&POOL, 8, 30_000.0, 7);
    let cfg = SchedConfig {
        num_gpus: 1,
        queue_capacity: 8,
        alloc: AllocationPolicy::Even,
        replan_interval: None,
    };

    let engine = Arc::new(SweepEngine::sequential());
    let mut ilp_p = pipeline_with_engine(2, Arc::clone(&engine));
    let mut ilp = PolicyKind::IlpEpoch.build();
    let ilp_report = OnlineScheduler::new(&mut ilp_p, cfg)
        .unwrap()
        .run(&trace, ilp.as_mut())
        .expect("ilp run");

    let base_sms = GpuConfig::test_small().num_sms;
    let mut fleet_p = pipeline_with_engine(2, Arc::clone(&engine));
    let mut fleet = FleetPolicy::new(FleetSpec::homogeneous(1, base_sms).expect("spec"));
    let stats = fleet.stats_handle();
    let fleet_report = OnlineScheduler::new(&mut fleet_p, cfg)
        .unwrap()
        .run(&trace, &mut fleet)
        .expect("fleet run");

    assert_eq!(
        fleet_report.to_json(),
        ilp_report.to_json(),
        "degenerate fleet must be byte-identical to the single-GPU scheduler"
    );
    let s = stats.lock().unwrap();
    assert!(s.plans > 0, "delegated plans still counted");
    assert_eq!(s.cold_fallbacks, 0, "delegation never consults the predictor");
}

/// Granted budgets stay inside every device's SM pool and every placed
/// job holds at least the minimum budget.
#[test]
fn allocation_conserves_per_device_sm_budgets() {
    let spec = hetero3();
    let engine = SweepEngine::sequential();
    let base = GpuConfig::test_small();
    let predictor =
        FleetPredictor::warm(&engine, &base, Scale::TEST, &spec, &POOL).expect("warm");

    let pending = jobs(&[
        Benchmark::Gups,
        Benchmark::Hs,
        Benchmark::Lud,
        Benchmark::Gups,
        Benchmark::Hs,
        Benchmark::Lud,
    ]);
    let plan = allocate(&predictor, &spec, &pending, &[0, 1, 2], 2);
    assert_eq!(plan.placed() + plan.deferred.len(), pending.len());
    for a in &plan.assignments {
        let cap = spec.devices()[a.device].num_sms;
        let total: u32 = a.budgets.iter().sum();
        assert!(total <= cap, "device {} over budget: {total} > {cap}", a.device);
        assert!(a.budgets.iter().all(|&b| b >= 1), "minimum budget is 1 SM");
        assert!(a.jobs.len() <= 2, "max_group respected");
    }
}

/// Adding a device never lowers the predicted fleet STP: every job
/// keeps at least the allocation it had, so the objective is monotone
/// in fleet size.
#[test]
fn adding_a_device_never_lowers_predicted_stp() {
    let engine = SweepEngine::sequential();
    let base = GpuConfig::test_small();
    let pending = jobs(&[
        Benchmark::Gups,
        Benchmark::Hs,
        Benchmark::Lud,
        Benchmark::Gups,
    ]);

    let fleets: [&[u32]; 3] = [&[30], &[30, 15], &[30, 15, 8]];
    let mut last = 0.0;
    for sizes in fleets {
        let spec = FleetSpec::new(
            sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| DeviceProfile { id: format!("gpu{i}"), num_sms: n })
                .collect(),
        )
        .expect("spec");
        let predictor =
            FleetPredictor::warm(&engine, &base, Scale::TEST, &spec, &POOL).expect("warm");
        let all: Vec<usize> = (0..spec.len()).collect();
        let plan = allocate(&predictor, &spec, &pending, &all, 2);
        assert!(
            plan.predicted_stp >= last - 1e-12,
            "fleet {sizes:?} predicted {} < previous {last}",
            plan.predicted_stp
        );
        last = plan.predicted_stp;
    }
}

/// The full heterogeneous run renders byte-identical reports on 1, 2
/// and 8 sweep threads — allocation order, measured cycles, churn and
/// all.
#[test]
fn fleet_run_is_bit_identical_across_thread_counts() {
    let spec = hetero3();
    let trace = wave_trace();
    let cfg = FleetRunConfig {
        queue_capacity: 16,
        mode: FleetMode::MarginalGain,
    };
    let render = |threads: usize| {
        let pipeline = pipeline_with_engine(2, Arc::new(SweepEngine::new(threads)));
        run_fleet(&pipeline, &spec, &cfg, &trace)
            .expect("fleet run")
            .to_json()
    };
    let one = render(1);
    assert_eq!(one, render(2), "1 vs 2 threads");
    assert_eq!(one, render(8), "1 vs 8 threads");
}

/// Marginal-gain budgeting beats whole-device FCFS on cross-device STP
/// for the heterogeneous 3-device fleet (the FCFS baseline scores
/// exactly 1.0 per group by construction).
#[test]
fn hetero_fleet_beats_whole_device_fcfs_on_stp() {
    let spec = hetero3();
    let trace = wave_trace();
    let engine = Arc::new(SweepEngine::sequential());

    let fleet_p = pipeline_with_engine(2, Arc::clone(&engine));
    let fleet = run_fleet(
        &fleet_p,
        &spec,
        &FleetRunConfig { queue_capacity: 16, mode: FleetMode::MarginalGain },
        &trace,
    )
    .expect("fleet run");

    let fcfs_p = pipeline_with_engine(2, Arc::clone(&engine));
    let fcfs = run_fleet(
        &fcfs_p,
        &spec,
        &FleetRunConfig { queue_capacity: 16, mode: FleetMode::WholeDeviceFcfs },
        &trace,
    )
    .expect("fcfs run");

    assert!(
        (fcfs.stp() - 1.0).abs() < 1e-12,
        "whole-device FCFS scores exactly 1.0 per group, got {}",
        fcfs.stp()
    );
    assert!(
        fleet.stp() > fcfs.stp(),
        "marginal-gain STP {} must beat FCFS {}",
        fleet.stp(),
        fcfs.stp()
    );
    assert_eq!(
        fleet.jobs.len(),
        trace.len(),
        "every admitted job completes"
    );
}

/// A second run against the same cache directory replays entirely from
/// the memo cache: zero newly simulated jobs, identical bytes.
#[test]
fn warm_cache_replays_fleet_run_without_simulating() {
    struct TempDir(std::path::PathBuf);
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let dir = TempDir(
        std::env::temp_dir().join(format!("gcs-fleet-cache-{}", std::process::id())),
    );
    let _ = std::fs::remove_dir_all(&dir.0);

    let spec = hetero3();
    let trace = wave_trace();
    let cfg = FleetRunConfig {
        queue_capacity: 16,
        mode: FleetMode::MarginalGain,
    };

    let cold_engine = Arc::new(SweepEngine::sequential().with_cache_dir(&dir.0));
    let cold_p = pipeline_with_engine(2, Arc::clone(&cold_engine));
    let cold = run_fleet(&cold_p, &spec, &cfg, &trace).expect("cold run");
    assert!(cold_engine.stats().jobs_simulated > 0, "cold run must simulate");

    let warm_engine = Arc::new(SweepEngine::sequential().with_cache_dir(&dir.0));
    let warm_p = pipeline_with_engine(2, Arc::clone(&warm_engine));
    let warm = run_fleet(&warm_p, &spec, &cfg, &trace).expect("warm run");
    let stats = warm_engine.stats();
    assert_eq!(
        stats.jobs_simulated, 0,
        "warm start must serve the predictor and every group from cache"
    );
    assert!(stats.jobs_cached > 0, "warm run actually hit the cache");
    assert_eq!(warm.to_json(), cold.to_json(), "replay is bit-identical");
}

/// On a cold memo cache the fleet policy degrades to greedy grouping —
/// recording the degradation — and still covers every pending job.
#[test]
fn cold_predictor_cache_degrades_to_greedy_and_covers_pending() {
    let engine = Arc::new(SweepEngine::sequential());
    let pipeline = pipeline_with_engine(2, Arc::clone(&engine));
    let mut policy = FleetPolicy::new(hetero3());
    let stats = policy.stats_handle();

    // Pipeline construction profiles the suite; only growth past this
    // baseline would mean the *plan* simulated.
    let baseline = engine.stats().jobs_simulated;
    let pending = jobs(&[Benchmark::Gups, Benchmark::Hs, Benchmark::Lud]);
    let plan = policy.plan(&pipeline, &pending).expect("plan");

    assert_eq!(policy.name(), "fleet");
    assert_eq!(
        plan.degradations.len(),
        1,
        "cold cache must record a PredictorColdFallback"
    );
    assert!(
        plan.degradations[0].to_string().contains("predictor cold"),
        "unexpected degradation: {}",
        plan.degradations[0]
    );
    let mut covered: Vec<usize> = plan.groups.iter().flatten().copied().collect();
    covered.sort_unstable();
    assert_eq!(covered, vec![0, 1, 2], "every pending job grouped exactly once");
    assert_eq!(
        engine.stats().jobs_simulated,
        baseline,
        "planning must never simulate"
    );
    let s = stats.lock().unwrap();
    assert_eq!(s.cold_fallbacks, 1);
}

/// Spec validation errors are typed, and the JSON round-trip is exact.
#[test]
fn fleet_spec_round_trips_and_rejects_garbage() {
    let spec = hetero3();
    let json = spec.to_json();
    let back = FleetSpec::from_json(&json).expect("round trip");
    assert_eq!(back.to_json(), json);
    assert_eq!(back.devices(), spec.devices());
    assert_eq!(back.max_sms(), 30);

    assert!(FleetSpec::from_json("{").is_err());
    assert!(FleetSpec::new(vec![]).is_err());
    assert!(FleetSpec::new(vec![DeviceProfile { id: "a".into(), num_sms: 0 }]).is_err());
}
