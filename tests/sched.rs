//! Integration pins for the online scheduler (`gcs_sched`).
//!
//! The two load-bearing guarantees:
//!
//! * **Batch equivalence** — a trace with every job at `t = 0`, one
//!   device and the [`IlpEpoch`] policy must reproduce the batch
//!   [`Pipeline::run_queue`] run exactly: same groups, same per-app
//!   cycle counts, same total makespan. The online subsystem is a
//!   strict generalization of the thesis pipeline, not a reimplementation
//!   that can drift.
//! * **Thread-count determinism** — the rendered [`SchedReport`] JSON
//!   is byte-identical whether the sweep engine runs on 1, 2 or 8
//!   worker threads.

use std::sync::Arc;

use gcs_core::interference::InterferenceMatrix;
use gcs_core::runner::{AllocationPolicy, GroupingPolicy, Pipeline, RunConfig};
use gcs_core::SweepEngine;
use gcs_sched::{OnlineScheduler, PolicyKind, SchedConfig};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{Arrival, ArrivalTrace, Benchmark, Scale};

fn run_config(concurrency: u32) -> RunConfig {
    RunConfig {
        gpu: GpuConfig::test_small(),
        scale: Scale::TEST,
        concurrency,
    }
}

fn pipeline_with_engine(concurrency: u32, engine: Arc<SweepEngine>) -> Pipeline {
    Pipeline::with_matrix_and_engine(
        run_config(concurrency),
        InterferenceMatrix::synthetic_paper_shape(),
        engine,
    )
    .expect("pipeline")
}

fn pipeline(concurrency: u32) -> Pipeline {
    pipeline_with_engine(concurrency, Arc::new(SweepEngine::sequential()))
}

fn trace_at_zero(benches: &[Benchmark]) -> ArrivalTrace {
    ArrivalTrace::new(
        benches
            .iter()
            .map(|&bench| Arrival { time: 0, bench })
            .collect(),
    )
}

/// All jobs at t=0, one GPU, IlpEpoch == batch `run_queue(Ilp)`,
/// bit-for-bit: group membership, per-app cycles, makespan.
#[test]
fn degenerate_trace_reproduces_batch_pipeline() {
    let queue = gcs_core::queues::thesis_queue_14();
    // Shared engine: the memo cache guarantees both paths measure each
    // group once, so a mismatch can only come from scheduling logic.
    let engine = Arc::new(SweepEngine::sequential());

    for alloc in [AllocationPolicy::Even, AllocationPolicy::Smra] {
        let mut batch_p = pipeline_with_engine(2, Arc::clone(&engine));
        let batch = batch_p
            .run_queue(&queue, GroupingPolicy::Ilp, alloc)
            .expect("batch run");

        let mut online_p = pipeline_with_engine(2, Arc::clone(&engine));
        let cfg = SchedConfig {
            num_gpus: 1,
            queue_capacity: queue.len(),
            alloc,
            replan_interval: None,
        };
        let mut policy = PolicyKind::IlpEpoch.build();
        let report = OnlineScheduler::new(&mut online_p, cfg)
            .unwrap()
            .run(&trace_at_zero(&queue), policy.as_mut())
            .expect("online run");

        assert_eq!(report.groups.len(), batch.groups.len(), "{alloc:?}");
        for (og, bg) in report.groups.iter().zip(&batch.groups) {
            // Same benchmarks in the same slots...
            let online_benches: Vec<Benchmark> =
                og.jobs.iter().map(|&id| queue[id]).collect();
            let batch_benches: Vec<Benchmark> = bg.apps.iter().map(|a| a.bench).collect();
            assert_eq!(online_benches, batch_benches, "{alloc:?}");
            // ...and the exact same measured occupancy.
            assert_eq!(og.end - og.start, bg.makespan, "{alloc:?}");
        }
        // Per-job cycle counts match the batch per-app cycle counts.
        let batch_cycles: Vec<u64> = batch
            .groups
            .iter()
            .flat_map(|g| g.apps.iter().map(|a| a.cycles))
            .collect();
        let mut online_cycles: Vec<(usize, u64)> = Vec::new();
        for g in &report.groups {
            for &id in &g.jobs {
                let job = report.jobs.iter().find(|j| j.id == id).unwrap();
                online_cycles.push((id, job.corun_cycles));
            }
        }
        assert_eq!(
            online_cycles.iter().map(|&(_, c)| c).collect::<Vec<_>>(),
            batch_cycles,
            "{alloc:?}"
        );
        // Back-to-back on one device: total occupancy == batch total.
        assert_eq!(report.makespan, batch.total_cycles, "{alloc:?}");
        assert!(report.rejections.is_empty());
        assert_eq!(report.jobs.len(), queue.len());
    }
}

/// The report JSON is byte-identical across sweep-engine thread counts.
#[test]
fn report_json_is_identical_across_thread_counts() {
    let trace = ArrivalTrace::poisson(&Benchmark::ALL, 10, 30_000.0, 42);
    let cfg = SchedConfig {
        num_gpus: 2,
        queue_capacity: 16,
        alloc: AllocationPolicy::Smra,
        replan_interval: None,
    };
    let mut renders = Vec::new();
    for threads in [1, 2, 8] {
        let engine = Arc::new(SweepEngine::new(threads));
        let mut p = pipeline_with_engine(2, engine);
        let mut policy = PolicyKind::IlpEpoch.build();
        let report = OnlineScheduler::new(&mut p, cfg)
            .unwrap()
            .run(&trace, policy.as_mut())
            .expect("run");
        renders.push(report.to_json());
    }
    assert_eq!(renders[0], renders[1], "1 vs 2 threads");
    assert_eq!(renders[0], renders[2], "1 vs 8 threads");
}

/// Every policy completes a staggered trace and accounts for every
/// arrival exactly once (completed + rejected == trace length).
#[test]
fn all_policies_complete_a_staggered_trace() {
    let trace = ArrivalTrace::bursty(&Benchmark::ALL, 3, 4, 50_000.0, 7);
    assert_eq!(trace.len(), 12);
    for kind in PolicyKind::ALL {
        let mut p = pipeline(2);
        let cfg = SchedConfig {
            num_gpus: 1,
            queue_capacity: 8,
            alloc: AllocationPolicy::Even,
            replan_interval: None,
        };
        let mut policy = kind.build();
        let report = OnlineScheduler::new(&mut p, cfg)
            .unwrap()
            .run(&trace, policy.as_mut())
            .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        assert_eq!(
            report.jobs.len() + report.rejections.len(),
            trace.len(),
            "{}",
            kind.name()
        );
        assert_eq!(report.policy, kind.name());
        // Dispatches never precede arrivals, completions never precede
        // dispatches, and the device timeline is non-overlapping.
        for j in &report.jobs {
            assert!(j.dispatch >= j.arrival, "{}", kind.name());
            assert!(j.completion > j.dispatch, "{}", kind.name());
        }
        let mut ends = 0u64;
        for g in &report.groups {
            assert!(g.start >= ends, "{}: overlapping groups", kind.name());
            ends = g.end;
        }
    }
}

/// Backpressure under a burst: the bounded queue rejects the overflow
/// with typed records, and a later lull admits new work again.
#[test]
fn bursty_overload_sheds_load_then_recovers() {
    // Burst of 6 at t=0 into capacity 3 (3 rejected), second burst
    // far enough out that the queue has drained (all admitted).
    let mut arrivals: Vec<Arrival> = Benchmark::ALL[..6]
        .iter()
        .map(|&bench| Arrival { time: 0, bench })
        .collect();
    arrivals.extend(Benchmark::ALL[6..9].iter().map(|&bench| Arrival {
        time: 500_000_000,
        bench,
    }));
    let trace = ArrivalTrace::new(arrivals);

    let mut p = pipeline(2);
    let cfg = SchedConfig {
        num_gpus: 1,
        queue_capacity: 3,
        alloc: AllocationPolicy::Even,
        replan_interval: None,
    };
    let mut policy = PolicyKind::GreedyClass.build();
    let report = OnlineScheduler::new(&mut p, cfg)
        .unwrap()
        .run(&trace, policy.as_mut())
        .expect("run");

    assert_eq!(report.rejections.len(), 3);
    assert!(
        report.rejections.iter().all(|r| r.at == 0 && r.capacity == 3),
        "only the t=0 burst overflows: {:?}",
        report.rejections
    );
    assert_eq!(report.jobs.len(), 6, "3 admitted early + 3 late");
    assert!(
        report.jobs.iter().any(|j| j.arrival == 500_000_000),
        "late burst admitted after drain"
    );
}

/// The report's STP agrees with the same metric computed from the
/// batch pipeline's raw group results — the two accounting paths can't
/// drift. (The thesis' IlpEpoch-beats-Fcfs ordering is a device-model
/// claim, demonstrated at SMALL scale in `results/sched/`; the tiny
/// synthetic TEST device doesn't guarantee it, so it isn't pinned
/// here.)
#[test]
fn online_stp_matches_batch_derived_stp() {
    let queue = gcs_core::queues::thesis_queue_14();
    let engine = Arc::new(SweepEngine::sequential());

    let mut batch_p = pipeline_with_engine(2, Arc::clone(&engine));
    let batch = batch_p
        .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Smra)
        .expect("batch run");
    let batch_stp: f64 = batch
        .groups
        .iter()
        .map(|g| {
            g.apps
                .iter()
                .map(|a| batch_p.profile(a.bench).cycles as f64 / a.cycles as f64)
                .sum::<f64>()
        })
        .sum::<f64>()
        / batch.groups.len() as f64;

    let mut online_p = pipeline_with_engine(2, Arc::clone(&engine));
    let mut policy = PolicyKind::IlpEpoch.build();
    let report = OnlineScheduler::new(&mut online_p, SchedConfig::default())
        .unwrap()
        .run(&trace_at_zero(&queue), policy.as_mut())
        .expect("online run");

    assert!(
        (report.stp() - batch_stp).abs() < 1e-12,
        "online STP {} != batch-derived STP {}",
        report.stp(),
        batch_stp
    );
    assert!(report.antt() >= 1.0, "queueing can only slow jobs down");
}

/// Trace bindings reach the online scheduler untouched: two authored
/// traces bound behind suite slots are scheduled, grouped and co-run
/// by `gcs-sched`, and the rendered report JSON is byte-identical at
/// 1, 2 and 8 sweep threads.
#[test]
fn bound_traces_flow_through_online_scheduler() {
    use gcs_sim::KernelTrace;
    use gcs_workloads::{phase_shift_trace, tensor_mix_trace};
    use std::collections::BTreeMap;

    let gpu_cfg = GpuConfig::test_small();
    let bindings: BTreeMap<Benchmark, Arc<KernelTrace>> = BTreeMap::from([
        (Benchmark::Jpeg, Arc::new(phase_shift_trace(&gpu_cfg))),
        (Benchmark::Ray, Arc::new(tensor_mix_trace(&gpu_cfg))),
    ]);
    let trace = trace_at_zero(&[
        Benchmark::Blk,
        Benchmark::Jpeg,
        Benchmark::Gups,
        Benchmark::Ray,
    ]);
    let cfg = SchedConfig {
        num_gpus: 1,
        queue_capacity: 8,
        alloc: AllocationPolicy::Smra,
        replan_interval: None,
    };
    let mut renders = Vec::new();
    for threads in [1usize, 2, 8] {
        let mut p = Pipeline::with_matrix_engine_and_bindings(
            run_config(2),
            InterferenceMatrix::synthetic_paper_shape(),
            Arc::new(SweepEngine::new(threads)),
            bindings.clone(),
        )
        .expect("pipeline with bindings");
        let mut policy = PolicyKind::IlpEpoch.build();
        let report = OnlineScheduler::new(&mut p, cfg)
            .unwrap()
            .run(&trace, policy.as_mut())
            .expect("run");
        assert_eq!(report.jobs.len(), 4, "all four jobs complete");
        assert!(report.rejections.is_empty());
        renders.push(report.to_json());
    }
    assert_eq!(renders[0], renders[1], "1 vs 2 threads");
    assert_eq!(renders[0], renders[2], "1 vs 8 threads");
}
