//! End-to-end queue executions through the full [`gcs_core::runner`]
//! pipeline on the scaled-down test device — every grouping and
//! allocation policy combination the evaluation uses.

use gcs_core::interference::InterferenceMatrix;
use gcs_core::queues::{queue_with_distribution, thesis_queue_14, Distribution};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy, Pipeline, RunConfig};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{Benchmark, Scale};

fn pipeline(concurrency: u32) -> Pipeline {
    let cfg = RunConfig {
        gpu: GpuConfig::test_small(),
        scale: Scale::TEST,
        concurrency,
    };
    Pipeline::with_matrix(cfg, InterferenceMatrix::synthetic_paper_shape()).expect("pipeline")
}

#[test]
fn all_policy_combinations_run_a_small_queue() {
    let mut p = pipeline(2);
    let queue = vec![
        Benchmark::Gups,
        Benchmark::Sad,
        Benchmark::Lud,
        Benchmark::Bfs2,
    ];
    for grouping in [GroupingPolicy::Serial, GroupingPolicy::Fcfs, GroupingPolicy::Ilp] {
        for alloc in [
            AllocationPolicy::Even,
            AllocationPolicy::ProfileBased,
            AllocationPolicy::Smra,
        ] {
            let r = p
                .run_queue(&queue, grouping, alloc)
                .unwrap_or_else(|e| panic!("{grouping:?}/{alloc:?}: {e}"));
            assert!(r.device_throughput > 0.0, "{grouping:?}/{alloc:?}");
            let apps: usize = r.groups.iter().map(|g| g.apps.len()).sum();
            assert_eq!(apps, queue.len(), "{grouping:?}/{alloc:?} lost apps");
        }
    }
}

#[test]
fn concurrent_execution_beats_serial_on_mixed_queues() {
    let mut p = pipeline(2);
    let queue = thesis_queue_14();
    let serial = p
        .run_queue(&queue, GroupingPolicy::Serial, AllocationPolicy::Even)
        .expect("serial");
    let ilp = p
        .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Even)
        .expect("ilp");
    assert!(
        ilp.device_throughput > serial.device_throughput,
        "co-scheduling must beat serial: {} vs {}",
        ilp.device_throughput,
        serial.device_throughput
    );
}

#[test]
fn three_way_execution_works() {
    let mut p = pipeline(3);
    let queue: Vec<Benchmark> = thesis_queue_14().into_iter().take(6).collect();
    let r = p
        .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Even)
        .expect("3-way");
    assert_eq!(r.groups.len(), 2);
    for g in &r.groups {
        assert_eq!(g.apps.len(), 3);
    }
}

#[test]
fn distribution_queues_execute_under_ilp() {
    let mut p = pipeline(2);
    for dist in [Distribution::MHeavy, Distribution::AHeavy] {
        let queue = queue_with_distribution(dist, 8);
        let r = p
            .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Even)
            .unwrap_or_else(|e| panic!("{dist:?}: {e}"));
        assert_eq!(r.groups.len(), 4);
    }
}

#[test]
fn group_makespan_bounds_member_cycles() {
    let mut p = pipeline(2);
    let r = p
        .run_queue(
            &[Benchmark::Blk, Benchmark::Hs],
            GroupingPolicy::Fcfs,
            AllocationPolicy::Even,
        )
        .expect("run");
    for g in &r.groups {
        for a in &g.apps {
            assert!(a.cycles <= g.makespan);
            assert!(a.ipc > 0.0);
        }
    }
}

#[test]
fn smra_is_not_catastrophic_on_a_queue() {
    let mut p = pipeline(2);
    let queue = vec![
        Benchmark::Gups,
        Benchmark::Sad,
        Benchmark::Blk,
        Benchmark::Lud,
    ];
    let even = p
        .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Even)
        .expect("even");
    let smra = p
        .run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Smra)
        .expect("smra");
    // The revert guard bounds the damage; generous slack for the tiny
    // test device where windows are noisy.
    assert!(
        smra.total_cycles < even.total_cycles * 13 / 10,
        "SMRA {} vs Even {}",
        smra.total_cycles,
        even.total_cycles
    );
}
