//! Chaos suite: deterministic fault injection and graceful degradation.
//!
//! A [`FaultPlan`] is a *runtime* schedule of device degradations —
//! SM outages, memory-latency spikes, MSHR throttling — driven by the
//! same seeded RNG as the rest of the simulator. The contracts pinned
//! here:
//!
//! * **Replay determinism** — a fixed plan produces bit-identical
//!   statistics in both step modes and at any sweep thread count.
//! * **SMRA degradation** — the controller notices a shrunk surviving
//!   set, conserves SMs over it, and keeps making decisions afterwards;
//!   on a degraded device it is not meaningfully worse than a static
//!   even split.
//! * **Engine robustness** — a panicking job surfaces as a typed
//!   [`CoreError::Worker`] without tearing down the batch, and a
//!   corrupted cache entry is quarantined and transparently repaired.

use gcs_core::smra::{SmraAction, SmraController, SmraParams};
use gcs_core::sweep::SweepEngine;
use gcs_core::CoreError;
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::{Gpu, StepMode};
use gcs_sim::stats::SimStats;
use gcs_sim::FaultPlan;
use gcs_workloads::{Benchmark, Scale};

const MAX_CYCLES: u64 = 80_000_000;

/// A plan exercising all three fault kinds inside a test-small run.
fn mixed_plan() -> FaultPlan {
    FaultPlan::new()
        .disable_sm(2_000, 0)
        .mem_latency_window(5_000, 20_000, 40, 80)
        .mshr_window(8_000, 25_000, 2)
        .enable_sm(30_000, 0)
}

fn run_faulted_alone(bench: Benchmark, plan: FaultPlan, mode: StepMode) -> (SimStats, u64) {
    let mut gpu = Gpu::new(GpuConfig::test_small()).expect("device");
    gpu.set_step_mode(mode);
    gpu.install_fault_plan(plan).expect("valid plan");
    gpu.launch(bench.kernel(Scale::TEST)).expect("launch");
    gpu.partition_even();
    gpu.run(MAX_CYCLES).expect("faulted run finishes");
    (gpu.stats().clone(), gpu.cycle())
}

#[test]
fn faulted_runs_are_bit_identical_across_step_modes() {
    for bench in [Benchmark::Gups, Benchmark::Spmv, Benchmark::Sad] {
        let (stats_cycle, cyc_cycle) = run_faulted_alone(bench, mixed_plan(), StepMode::Cycle);
        let (stats_eh, cyc_eh) = run_faulted_alone(bench, mixed_plan(), StepMode::EventHorizon);
        assert_eq!(
            cyc_cycle, cyc_eh,
            "{bench:?}: faulted final cycle diverged between step modes"
        );
        assert_eq!(
            stats_cycle, stats_eh,
            "{bench:?}: faulted SimStats diverged between step modes"
        );
    }
}

#[test]
fn faulted_sweep_is_deterministic_across_thread_counts() {
    let suite = Benchmark::ALL;
    let job = |i: usize| -> Result<(SimStats, u64), CoreError> {
        let cfg = GpuConfig::test_small();
        let plan = FaultPlan::random(0xC0FF_EE00 + i as u64, &cfg, 40_000);
        Ok(run_faulted_alone(suite[i], plan, StepMode::EventHorizon))
    };
    let reference = SweepEngine::new(1)
        .run_parallel(suite.len(), job)
        .expect("reference sweep");
    for threads in [1usize, 2, 8] {
        for run in 0..2 {
            let got = SweepEngine::new(threads)
                .run_parallel(suite.len(), job)
                .expect("faulted sweep");
            assert_eq!(
                reference, got,
                "faulted sweep diverged at threads={threads} run={run}"
            );
        }
    }
}

#[test]
fn random_fault_plans_never_panic_across_the_suite() {
    for (i, bench) in Benchmark::ALL.iter().enumerate() {
        let cfg = GpuConfig::test_small();
        let plan = FaultPlan::random(0x5EED_0000 + i as u64, &cfg, 30_000);
        let mut gpu = Gpu::new(cfg).expect("device");
        gpu.install_fault_plan(plan).expect("random plans validate");
        gpu.launch(bench.kernel(Scale::TEST)).expect("launch");
        gpu.partition_even();
        match gpu.run(MAX_CYCLES) {
            Ok(()) => assert!(gpu.all_done(), "{bench:?}: run returned before finishing"),
            Err(e) => panic!("{bench:?}: faulted run failed: {e}"),
        }
    }
}

#[test]
fn smra_detects_faults_conserves_sms_and_reconverges() {
    let cfg = GpuConfig::test_small();
    let total = cfg.num_sms;
    let mut gpu = Gpu::new(cfg).expect("device");
    let a = gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("a");
    let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).expect("b");
    gpu.partition_even();
    // Mid-interval outage: cycle 3_500 falls inside a T_C = 1_000 window.
    gpu.install_fault_plan(FaultPlan::new().disable_sm(3_500, 0))
        .expect("valid plan");

    let params = SmraParams {
        tc: 1_000,
        nr: 1,
        r_min: 1,
        ..SmraParams::for_device(total, 2)
    };
    let mut ctl = SmraController::new(params, vec![a, b], &gpu);
    while !gpu.all_done() {
        gpu.run_for(params.tc);
        if !gpu.all_done() {
            ctl.decide(&mut gpu);
            if !gpu.app_finished(a) && !gpu.app_finished(b) {
                // Conservation over the *surviving* set, not the
                // configured total.
                assert_eq!(
                    gpu.sm_count(a) + gpu.sm_count(b),
                    gpu.num_enabled_sms(),
                    "SMs leaked at cycle {} after {:?}",
                    gpu.cycle(),
                    ctl.actions().last()
                );
            }
        }
        assert!(gpu.cycle() < MAX_CYCLES, "runaway faulted SMRA run");
    }

    assert_eq!(gpu.num_enabled_sms(), total - 1, "outage is permanent");
    let acts = ctl.actions();
    let fault_at = acts
        .iter()
        .position(|&x| x == SmraAction::FaultDetected { surviving: total - 1 })
        .unwrap_or_else(|| panic!("no FaultDetected in {acts:?}"));
    assert!(
        acts.len() > fault_at + 1,
        "controller stopped deciding after the fault: {acts:?}"
    );
}

#[test]
fn smra_on_degraded_device_is_not_worse_than_even_split() {
    let degraded_corun = |smra: bool| -> u64 {
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("device");
        let a = gpu.launch(Benchmark::Gups.kernel(Scale::TEST)).expect("a");
        let b = gpu.launch(Benchmark::Sad.kernel(Scale::TEST)).expect("b");
        gpu.partition_even();
        gpu.install_fault_plan(FaultPlan::new().disable_sm(2_000, 0))
            .expect("valid plan");
        if smra {
            let params = SmraParams {
                tc: 2_000,
                ..SmraParams::for_device(gpu.config().num_sms, 2)
            };
            let mut ctl = SmraController::new(params, vec![a, b], &gpu);
            ctl.run_to_completion(&mut gpu, MAX_CYCLES)
                .expect("degraded SMRA run finishes");
        } else {
            gpu.run(MAX_CYCLES).expect("degraded even run finishes");
        }
        gpu.cycle()
    };
    let even = degraded_corun(false);
    let smra = degraded_corun(true);
    // Same workloads → same retired instructions, so makespan compares
    // device throughput directly. The revert guard bounds any damage;
    // allow the same 25% slack the healthy-device test uses for the
    // tiny test configuration.
    assert!(
        (smra as f64) < (even as f64) * 1.25,
        "SMRA on a degraded device regressed: SMRA {smra} vs Even {even}"
    );
}

#[test]
fn panicking_sweep_job_is_isolated_at_any_thread_count() {
    for threads in [1usize, 2, 8] {
        let e = SweepEngine::new(threads);
        let run = |i: usize| -> Result<usize, CoreError> {
            if i == 3 {
                panic!("chaos monkey strikes job {i}");
            }
            Ok(i * 10)
        };
        let err = e.run_parallel(8, run).expect_err("job 3 panics");
        match err {
            CoreError::Worker { job, ref message } => {
                assert_eq!(job, 3);
                assert!(message.contains("chaos monkey"), "lost payload: {message}");
            }
            other => panic!("expected Worker error, got {other}"),
        }
        let salvaged = e.run_parallel_salvage(8, run);
        assert_eq!(salvaged.len(), 8);
        for (i, r) in salvaged.iter().enumerate() {
            if i == 3 {
                assert!(r.is_err(), "panicking job salvaged as Ok");
            } else {
                assert_eq!(*r.as_ref().expect("healthy job"), i * 10);
            }
        }
    }
}

#[test]
fn corrupted_cache_entries_are_quarantined_and_repaired() {
    struct TempDir(std::path::PathBuf);
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let dir = TempDir(
        std::env::temp_dir().join(format!("gcs-chaos-cache-{}", std::process::id())),
    );
    let _ = std::fs::remove_dir_all(&dir.0);

    let cfg = GpuConfig::test_small();
    let group = [Benchmark::Lud, Benchmark::Sad];
    let mode = gcs_core::sweep::CorunMode::Even;

    let warm = SweepEngine::sequential().with_cache_dir(&dir.0);
    let reference = warm.corun(&cfg, Scale::TEST, &group, &mode).expect("warm run");
    assert_eq!(warm.stats().jobs_simulated, 1);

    // Vandalize every cache entry on disk.
    let mut clobbered = 0;
    for entry in std::fs::read_dir(&dir.0).expect("cache dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "json") {
            std::fs::write(&path, b"{ not json").expect("clobber");
            clobbered += 1;
        }
    }
    assert!(clobbered > 0, "warm run left no cache entries to corrupt");

    let cold = SweepEngine::sequential().with_cache_dir(&dir.0);
    let repaired = cold.corun(&cfg, Scale::TEST, &group, &mode).expect("repair run");
    assert_eq!(repaired, reference, "repaired result diverged");
    let stats = cold.stats();
    assert_eq!(stats.jobs_simulated, 1, "corrupt entry must force a re-run");
    assert_eq!(stats.jobs_quarantined as usize, clobbered);
    let quarantined = std::fs::read_dir(dir.0.join("quarantine"))
        .expect("quarantine directory created")
        .count();
    assert_eq!(quarantined, clobbered, "corrupt files moved aside for autopsy");

    // Third engine: the repaired entry now serves from cache.
    let hot = SweepEngine::sequential().with_cache_dir(&dir.0);
    let cached = hot.corun(&cfg, Scale::TEST, &group, &mode).expect("cached run");
    assert_eq!(cached, reference);
    assert_eq!(hot.stats().jobs_cached, 1, "repair did not restore the cache");
}

/// A replayed trace under a fault plan behaves exactly like any other
/// workload: the faulted run completes and is bit-identical across
/// step modes (the replay cursors are driven by the same issue path
/// the faults perturb).
#[test]
fn faulted_traced_replay_is_bit_identical_across_step_modes() {
    let trace = {
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("device");
        let app = gpu.launch(Benchmark::Spmv.kernel(Scale::TEST)).expect("launch");
        gpu.enable_trace_recording(app).expect("recorder");
        gpu.partition_even();
        gpu.run(MAX_CYCLES).expect("recording run finishes");
        std::sync::Arc::new(gpu.take_trace(app).expect("trace"))
    };
    let run = |mode: StepMode| {
        let mut gpu = Gpu::new(GpuConfig::test_small()).expect("device");
        gpu.set_step_mode(mode);
        gpu.install_fault_plan(mixed_plan()).expect("valid plan");
        gpu.launch_traced(std::sync::Arc::clone(&trace)).expect("launch");
        gpu.partition_even();
        gpu.run(MAX_CYCLES).expect("faulted replay finishes");
        (gpu.stats().clone(), gpu.cycle())
    };
    let (s_cycle, c_cycle) = run(StepMode::Cycle);
    let (s_eh, c_eh) = run(StepMode::EventHorizon);
    assert_eq!(c_cycle, c_eh, "faulted replay cycle diverged between step modes");
    assert_eq!(s_cycle, s_eh, "faulted replay stats diverged between step modes");
}
