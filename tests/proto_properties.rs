//! Adversarial property tests for the daemon frame protocol
//! (`gcs_sched::proto`), in the style of the trace wire-format suite:
//! seeded [`SimRng`] fuzzing, exhaustive truncation prefixes and
//! single-bit corruption over every request/response shape. The
//! invariant under attack is simple — **the decoder returns a typed
//! [`ProtoError`], it never panics and never misinterprets a damaged
//! frame as a different valid frame without the checksum catching it.**
//!
//! `--features proptest-tests` widens the fuzz sweep.

use gcs_sched::proto::{
    decode_frame, encode_frame, ProtoError, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD,
};
use gcs_sched::{Request, Response};
use gcs_sim::rng::SimRng;
use gcs_workloads::Benchmark;

const CASES: usize = if cfg!(feature = "proptest-tests") { 400 } else { 64 };

/// A zoo of representative frames: every request and response shape,
/// including escapes, extremes and an empty-ish payload.
fn sample_frames() -> Vec<Vec<u8>> {
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for req in [
        Request::Submit {
            id: 0,
            bench: Benchmark::Gups,
            at: 0,
        },
        Request::Submit {
            id: u64::MAX,
            bench: Benchmark::Bfs2,
            at: u64::MAX,
        },
        Request::Status,
        Request::Report,
        Request::Drain,
    ] {
        frames.push(req.encode());
    }
    for resp in [
        Response::Submitted { id: 3 },
        Response::Rejected {
            id: 9,
            retry_after: 12_345,
            draining: true,
        },
        Response::Status {
            now: 1,
            pending: 2,
            running: 3,
            completed: 4,
            rejected: 5,
            failed: 6,
            degradations: 7,
            draining: false,
        },
        Response::Report {
            json: "{\n  \"jobs\": []\n}\n".into(),
        },
        Response::Drained {
            json: "nested \"quotes\" and \\ slashes \t\r\n".into(),
        },
        Response::Error {
            kind: "corrupt".into(),
            detail: "ctl \u{1} byte".into(),
            diag: Some("0/4 SMs enabled".into()),
        },
    ] {
        frames.push(resp.encode());
    }
    frames
}

/// Every sample round-trips exactly through its own decoder.
#[test]
fn all_samples_round_trip() {
    for frame in sample_frames() {
        let payload = decode_frame(&frame).expect("valid frame");
        // A valid frame is one of the two message kinds; decoding it
        // as *some* typed message must succeed.
        let req = Request::decode(&frame);
        let resp = Response::decode(&frame);
        assert!(
            req.is_ok() || resp.is_ok(),
            "undecodable valid frame: {payload:?}"
        );
    }
}

/// Every strict prefix of every sample frame decodes to `Truncated`
/// with an accurate offset — the header is length-checked before the
/// magic is even read — and never panics.
#[test]
fn every_truncation_prefix_is_typed() {
    for frame in sample_frames() {
        for cut in 0..frame.len() {
            let prefix = &frame[..cut];
            let err = decode_frame(prefix).expect_err("prefix must not decode");
            match err {
                ProtoError::Truncated { at, want } => {
                    assert_eq!(at, cut.min(prefix.len()));
                    assert!(want > 0);
                }
                other => panic!("prefix {cut}: unexpected {other:?}"),
            }
            // The typed message decoders hold the same contract.
            assert!(Request::decode(prefix).is_err());
            assert!(Response::decode(prefix).is_err());
        }
    }
}

/// Flipping any single bit of a frame yields a typed error or — only
/// when the flip lands in an encoded length/id field in a way the
/// checksum still catches — never a silently different message.
#[test]
fn every_single_bit_flip_is_caught_or_typed() {
    for frame in sample_frames() {
        let original_payload = decode_frame(&frame).expect("valid frame").to_vec();
        for byte in 0..frame.len() {
            for bit in 0..8u8 {
                let mut bent = frame.clone();
                bent[byte] ^= 1 << bit;
                match decode_frame(&bent) {
                    // Typed rejection: the common case.
                    Err(
                        ProtoError::BadMagic(_)
                        | ProtoError::UnsupportedVersion(_)
                        | ProtoError::Oversize { .. }
                        | ProtoError::Truncated { .. }
                        | ProtoError::Corrupt(_),
                    ) => {}
                    // A flip that decodes must not silently change the
                    // payload (a flipped checksum bit cannot collide
                    // with FNV-1a over an unchanged payload).
                    Ok(payload) => {
                        assert_eq!(
                            payload, original_payload,
                            "byte {byte} bit {bit}: silent payload change"
                        );
                        panic!("byte {byte} bit {bit}: corrupt frame decoded");
                    }
                }
            }
        }
    }
}

/// Seeded random garbage — arbitrary lengths, arbitrary bytes — always
/// produces a typed error, whatever decoder it is fed to.
#[test]
fn random_garbage_never_panics() {
    let mut rng = SimRng::seed_from_u64(0xfee1_dead);
    for case in 0..CASES {
        let len = (rng.gen_range(96) as usize).min(95);
        let bytes: Vec<u8> = (0..len).map(|_| (rng.gen_range(256)) as u8).collect();
        if let Ok(payload) = decode_frame(&bytes) {
            // Astronomically unlikely, but if it frames, the typed
            // decoders must still answer without panicking.
            let _ = Request::decode(&bytes);
            let _ = Response::decode(&bytes);
            assert!(payload.len() <= MAX_FRAME_PAYLOAD, "case {case}");
        }
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }
}

/// Seeded random *JSON-shaped* payloads wrapped in valid frames: the
/// framing layer passes them, the typed decoders reject them with
/// `Corrupt` — never a panic, never a bogus accept.
#[test]
fn framed_garbage_payloads_are_corrupt_not_fatal() {
    let mut rng = SimRng::seed_from_u64(0xbad_cafe);
    let alphabet: &[u8] = b"{}[]\":,abcdefghijklmnop0123456789 \\\t\n\x7f";
    for _ in 0..CASES {
        let len = rng.gen_range(64) as usize;
        let payload: Vec<u8> = (0..len)
            .map(|_| alphabet[rng.gen_range(alphabet.len() as u64) as usize])
            .collect();
        let frame = encode_frame(&payload);
        assert_eq!(decode_frame(&frame).expect("framing is sound"), &payload[..]);
        // The overwhelming majority cannot be valid messages; all must
        // fail *typed*.
        if let Err(e) = Request::decode(&frame) {
            assert!(matches!(e, ProtoError::Corrupt(_)), "unexpected {e:?}");
        }
        if let Err(e) = Response::decode(&frame) {
            assert!(matches!(e, ProtoError::Corrupt(_)), "unexpected {e:?}");
        }
    }
}

/// Headers advertising hostile payload lengths are refused before any
/// allocation could happen, with the length echoed in the error.
#[test]
fn hostile_lengths_are_refused_up_front() {
    let frame = encode_frame(b"ok");
    for hostile in [
        MAX_FRAME_PAYLOAD + 1,
        1 << 24,
        u32::MAX as usize & 0x7fff_ffff,
    ] {
        let mut bent = frame.clone();
        bent[8..12].copy_from_slice(&(hostile as u32).to_le_bytes());
        match gcs_sched::proto::decode_header(&bent[..FRAME_HEADER_LEN]) {
            Err(ProtoError::Oversize { len, max }) => {
                assert_eq!(len, hostile);
                assert_eq!(max, MAX_FRAME_PAYLOAD);
            }
            other => panic!("hostile len {hostile}: {other:?}"),
        }
    }
}

/// Error `kind()` strings are stable API — scripts and the CI smoke
/// match on them.
#[test]
fn error_kinds_are_stable() {
    let kinds: Vec<&str> = [
        ProtoError::Truncated { at: 0, want: 1 },
        ProtoError::BadMagic(*b"NOPE"),
        ProtoError::UnsupportedVersion(9),
        ProtoError::Oversize {
            len: 2_000_000,
            max: MAX_FRAME_PAYLOAD,
        },
        ProtoError::Corrupt("x".into()),
    ]
    .iter()
    .map(ProtoError::kind)
    .collect();
    assert_eq!(
        kinds,
        ["truncated", "bad-magic", "unsupported-version", "oversize", "corrupt"]
    );
}
