//! Quickstart: profile one benchmark, classify it, and co-run a pair.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gcs_core::classify::{classify, Thresholds};
use gcs_core::profile::profile_alone;
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_workloads::{Benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down GTX 480 keeps the example fast; swap in
    // `GpuConfig::gtx480()` and `Scale::FULL` for the real experiments.
    let cfg = GpuConfig::test_small();
    let scale = Scale::TEST;

    // 1. Profile an application running alone (§3.2.1).
    let gups = profile_alone(&Benchmark::Gups.kernel(scale), &cfg)?;
    println!(
        "GUPS alone: {:.1} GB/s DRAM, {:.1} GB/s L2->L1, IPC {:.1}, R {:.2}",
        gups.memory_bw, gups.l2_l1_bw, gups.ipc, gups.r
    );

    // 2. Classify it (Table 3.1). A bandwidth hog like GUPS lands in
    //    class M; SAD is compute-dominated (class A).
    let sad = profile_alone(&Benchmark::Sad.kernel(scale), &cfg)?;
    let t = Thresholds::derive(&cfg, [&gups, &sad]);
    println!("GUPS class: {}", classify(&gups, &t));
    println!("SAD  class: {}", classify(&sad, &t));

    // 3. Co-run the two on an even spatial partition and watch the
    //    device throughput.
    let mut gpu = Gpu::new(cfg)?;
    let a = gpu.launch(Benchmark::Gups.kernel(scale))?;
    let b = gpu.launch(Benchmark::Sad.kernel(scale))?;
    gpu.partition_even();
    gpu.run(200_000_000)?;
    println!(
        "co-run: GUPS {} cycles, SAD {} cycles, device throughput {:.1} IPC",
        gpu.stats().app(a).runtime_cycles(),
        gpu.stats().app(b).runtime_cycles(),
        gpu.stats().device_throughput(),
    );
    Ok(())
}
