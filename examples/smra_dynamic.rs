//! Dynamic SM reallocation (Algorithm 1): co-run a memory hog with a
//! compute app, let the SMRA controller shift SMs between them, and
//! compare against a static even split.
//!
//! ```text
//! cargo run --release --example smra_dynamic
//! ```

use gcs_core::smra::{SmraController, SmraParams};
use gcs_sim::config::GpuConfig;
use gcs_sim::gpu::Gpu;
use gcs_workloads::{Benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = GpuConfig::test_small();
    let scale = Scale::TEST;

    // Static even split baseline.
    let mut gpu = Gpu::new(cfg.clone())?;
    let hog = gpu.launch(Benchmark::Gups.kernel(scale))?;
    let worker = gpu.launch(Benchmark::Sad.kernel(scale))?;
    gpu.partition_even();
    gpu.run(200_000_000)?;
    let even_cycles = gpu.cycle();
    println!(
        "even split : makespan {even_cycles} cycles (GUPS {}, SAD {})",
        gpu.stats().app(hog).runtime_cycles(),
        gpu.stats().app(worker).runtime_cycles()
    );

    // SMRA: every T_C cycles, score the apps (low IPC + high bandwidth
    // means the app wastes its SMs on memory stalls) and migrate SMs by
    // draining blocks.
    let mut gpu = Gpu::new(cfg.clone())?;
    let hog = gpu.launch(Benchmark::Gups.kernel(scale))?;
    let worker = gpu.launch(Benchmark::Sad.kernel(scale))?;
    gpu.partition_even();
    let params = SmraParams {
        tc: 2_000,
        ..SmraParams::for_device(cfg.num_sms, 2)
    };
    let mut ctl = SmraController::new(params, vec![hog, worker], &gpu);
    ctl.run_to_completion(&mut gpu, 200_000_000)?;
    println!(
        "SMRA       : makespan {} cycles (GUPS {} SMs -> final {}, SAD -> {})",
        gpu.cycle(),
        cfg.num_sms / 2,
        gpu.sm_count(hog),
        gpu.sm_count(worker)
    );
    println!("controller actions: {:?}", ctl.actions());
    Ok(())
}
