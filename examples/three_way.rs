//! Three-application co-scheduling (§4.2): pattern enumeration grows to
//! C(4+3-1, 3) = 20 patterns, the ILP picks class triples, and three
//! applications share the device simultaneously.
//!
//! ```text
//! cargo run --release --example three_way
//! ```

use gcs_core::ilp::solve_grouping;
use gcs_core::interference::InterferenceMatrix;
use gcs_core::pattern::{enumerate_patterns, num_patterns};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy, Pipeline, RunConfig};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{Benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pattern space for NC = 3.
    let patterns = enumerate_patterns(3);
    println!(
        "NC = 3 gives C(4+3-1, 3) = {} patterns (Eq. 3.2 says {})",
        patterns.len(),
        num_patterns(4, 3)
    );

    // Solve a 9-application census (3 M, 3 MC, 0 C, 3 A) into triples.
    let matrix = InterferenceMatrix::synthetic_paper_shape();
    let sol = solve_grouping([3, 3, 0, 3], 3, &matrix)?;
    println!("\nILP grouping into triples:");
    for (pattern, mult) in &sol.multiplicities {
        println!("  {mult} x {pattern}");
    }

    // Execute a six-app queue three at a time on the small device.
    let cfg = RunConfig {
        gpu: GpuConfig::test_small(),
        scale: Scale::TEST,
        concurrency: 3,
    };
    let mut pipeline = Pipeline::with_matrix(cfg, matrix)?;
    let queue = vec![
        Benchmark::Gups,
        Benchmark::Blk,
        Benchmark::Sad,
        Benchmark::Lud,
        Benchmark::Hs,
        Benchmark::Bfs2,
    ];
    let report = pipeline.run_queue(&queue, GroupingPolicy::Ilp, AllocationPolicy::Smra)?;
    println!("\nexecution ({} groups):", report.groups.len());
    for g in &report.groups {
        let names: Vec<&str> = g.apps.iter().map(|a| a.bench.name()).collect();
        println!("  {:<16} makespan {} cycles", names.join("+"), g.makespan);
    }
    println!("device throughput: {:.1} IPC", report.device_throughput);
    Ok(())
}
