//! Online arrival-driven scheduling in ~40 lines: generate a Poisson
//! arrival trace over the Rodinia suite, run it through all three
//! epoch policies on two simulated devices, and compare tail latency
//! and throughput.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example online_scheduler
//! ```

use gcs_core::interference::InterferenceMatrix;
use gcs_core::runner::{AllocationPolicy, Pipeline, RunConfig};
use gcs_sched::{OnlineScheduler, PolicyKind, SchedConfig};
use gcs_sim::config::GpuConfig;
use gcs_workloads::{ArrivalTrace, Benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small device + synthetic interference keeps the example fast;
    // swap in GpuConfig::gtx480() / Pipeline::new for the real model.
    let cfg = RunConfig {
        gpu: GpuConfig::test_small(),
        scale: Scale::TEST,
        concurrency: 2,
    };

    // 20 jobs drawn round-robin from the suite, exponential
    // inter-arrival gaps with a 4k-cycle mean, fixed seed. The mean is
    // deliberately shorter than a job's service time so a backlog
    // forms — with an always-empty queue every policy just runs
    // whatever arrived and the comparison is vacuous.
    let trace = ArrivalTrace::poisson(&Benchmark::ALL, 20, 4_000.0, 42);
    println!(
        "trace: {} arrivals over {} cycles",
        trace.len(),
        trace.arrivals().last().map_or(0, |a| a.time)
    );

    let sched_cfg = SchedConfig {
        num_gpus: 2,
        queue_capacity: 16,
        alloc: AllocationPolicy::Smra,
        replan_interval: None,
    };

    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "policy", "makespan", "p50 delay", "p99 delay", "STP", "ANTT"
    );
    for kind in PolicyKind::ALL {
        // Fresh pipeline per policy so profile caches don't leak
        // timing differences between rows (results are simulated
        // cycles, so this only matters for wall-clock fairness).
        let mut pipeline =
            Pipeline::with_matrix(cfg.clone(), InterferenceMatrix::synthetic_paper_shape())?;
        let mut policy = kind.build();
        let report = OnlineScheduler::new(&mut pipeline, sched_cfg)?
            .run(&trace, policy.as_mut())?;
        let delay = report.queue_delay_stats();
        println!(
            "{:<8} {:>10} {:>12} {:>12} {:>8.3} {:>8.3}",
            report.policy,
            report.makespan,
            delay.p50,
            delay.p99,
            report.stp(),
            report.antt()
        );
    }
    Ok(())
}
