//! Contention-aware pairing with the ILP (§3.2.3): build a queue,
//! take an interference matrix, and compare the ILP's grouping with
//! plain FCFS end to end.
//!
//! ```text
//! cargo run --release --example pairing_ilp
//! ```

use gcs_core::ilp::solve_grouping;
use gcs_core::interference::InterferenceMatrix;
use gcs_core::queues::{census, thesis_queue_14};
use gcs_core::runner::{AllocationPolicy, GroupingPolicy, Pipeline, RunConfig};
use gcs_sim::config::GpuConfig;
use gcs_workloads::Scale;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The 14-app queue, grouped by the ILP against a synthetic matrix
    // shaped like the thesis' Fig 3.4 — no simulation needed for this
    // part.
    let matrix = InterferenceMatrix::synthetic_paper_shape();
    let queue = thesis_queue_14();
    let sol = solve_grouping(census(&queue), 2, &matrix)?;
    println!("ILP grouping for the 14-app queue (class patterns):");
    for (pattern, mult) in &sol.multiplicities {
        println!("  {mult} x {pattern}");
    }
    println!("objective f = {:.3}\n", sol.objective);

    // Now the full pipeline on a small device: profile, classify, group
    // and execute under FCFS vs ILP.
    let cfg = RunConfig {
        gpu: GpuConfig::test_small(),
        scale: Scale::TEST,
        concurrency: 2,
    };
    let mut pipeline = Pipeline::with_matrix(cfg, matrix)?;
    for policy in [GroupingPolicy::Fcfs, GroupingPolicy::Ilp] {
        let report = pipeline.run_queue(&queue, policy, AllocationPolicy::Even)?;
        println!(
            "{policy:?}: device throughput {:.1} IPC over {} cycles",
            report.device_throughput, report.total_cycles
        );
        for g in &report.groups {
            let names: Vec<&str> = g.apps.iter().map(|a| a.bench.name()).collect();
            println!("  {:<12} {} cycles", names.join("-"), g.makespan);
        }
    }
    Ok(())
}
