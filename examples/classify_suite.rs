//! Classify the whole synthetic Rodinia suite on a device model and
//! print the resulting Table 3.2-style report.
//!
//! ```text
//! cargo run --release --example classify_suite
//! ```

use gcs_core::classify::classify_suite;
use gcs_core::profile::profile_alone;
use gcs_core::queues::paper_class;
use gcs_sim::config::GpuConfig;
use gcs_workloads::{Benchmark, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Small device + tiny scale so the example finishes in seconds; the
    // full-fidelity version of this report is
    // `cargo run --release -p gcs-bench --bin fig_table32`.
    let cfg = GpuConfig::test_small();
    let scale = Scale::TEST;

    let mut profiles = Vec::new();
    for b in Benchmark::ALL {
        profiles.push(profile_alone(&b.kernel(scale), &cfg)?);
    }
    let (t, classes) = classify_suite(&cfg, &profiles);

    println!(
        "{:>6} {:>9} {:>9} {:>8} {:>6} {:>6} {:>6}",
        "bench", "MB GB/s", "L2L1 GB/s", "IPC", "R", "class", "paper"
    );
    for ((b, p), c) in Benchmark::ALL.iter().zip(&profiles).zip(&classes) {
        println!(
            "{:>6} {:>9.1} {:>9.1} {:>8.1} {:>6.2} {:>6} {:>6}",
            b.name(),
            p.memory_bw,
            p.l2_l1_bw,
            p.ipc,
            p.r,
            c.label(),
            paper_class(*b).label()
        );
    }
    println!(
        "\nthresholds: alpha {:.1}, beta {:.1}, gamma {:.1}, epsilon {:.1}",
        t.alpha, t.beta, t.gamma, t.epsilon
    );
    println!("note: classes can drift from the paper's on this scaled-down device;");
    println!("the GTX 480 model reproduces Table 3.2 exactly (see fig_table32).");
    Ok(())
}
